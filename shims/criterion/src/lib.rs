//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! `criterion_group!`/`criterion_main!`, and [`black_box`] — with a simple
//! warmup-then-measure timing loop that prints mean wall time per iteration.
//! There is no statistical analysis, plotting, or result persistence.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across sampled iterations).
const MEASURE_TARGET: Duration = Duration::from_millis(400);
const WARMUP_TARGET: Duration = Duration::from_millis(100);

/// Identifier for a parameterized benchmark, e.g. `BenchmarkId::new("ba", w)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Per-benchmark timing driver passed to the closure given to
/// [`BenchmarkGroup::bench_function`] and friends.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly: a short warmup, then timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup and calibration: find an iteration count that fills the
        // warmup budget, so per-iteration overhead is amortized.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target_iters = if per_iter.is_zero() {
            1000
        } else {
            (MEASURE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target_iters;
    }

    fn report(&self, name: &str) {
        if self.iters_done == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters_done as f64;
        println!(
            "{name:<40} time: {}  ({} iters)",
            fmt_time(per_iter),
            self.iters_done
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>10.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>10.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>10.2} ms", secs * 1e3)
    } else {
        format!("{secs:>10.2} s ")
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(&full);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_name());
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        b.report(&full);
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut total = 0u64;
        group.bench_function(BenchmarkId::new("sum", 16), |b| {
            b.iter(|| {
                total = total.wrapping_add((0..16u64).sum::<u64>());
                total
            })
        });
        group.finish();
        assert!(total > 0);
    }

    #[test]
    fn formats_times() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
    }
}
