// `determinism-taint` fixture: sources inside result-affecting code.
pub fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

pub fn plan(n: usize) -> usize {
    n / width()
}

fn quiet_clock() -> u64 {
    // mega-lint: allow(determinism-taint, reason = "diagnostic only; value never reaches results")
    std::time::Instant::now().elapsed().as_nanos() as u64
}
