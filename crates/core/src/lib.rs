//! MEGA core: the paper's primary contribution.
//!
//! MEGA ("More Efficient Graph Attention") reorganizes a graph into a **path
//! representation** during CPU-side preprocessing, so that graph attention on
//! the accelerator becomes a *banded, diagonal* computation with sequential,
//! coalesced memory access instead of an index-driven scatter/gather.
//!
//! The pipeline implemented here:
//!
//! 1. [`traversal`] — the objective graph traversal of Algorithm 1. An agent
//!    walks the graph, choosing at each step the unvisited-neighbor candidate
//!    that maximizes overlap with the last ω path entries (Eq. 2). Dead ends
//!    pop a stack of visited nodes with unvisited neighbors (a *revisit*);
//!    exhausted regions are escaped by a jump over a *virtual edge*.
//! 2. [`path`] — [`path::PathRepresentation`], the reordered sequence of node
//!    appearances together with virtual-edge marks and per-node position
//!    lists.
//! 3. [`band`] — [`band::BandMask`], the width-ω diagonal mask that records
//!    which in-band position pairs carry a real original edge (each original
//!    edge claims exactly one band slot, preserving exact 1-hop aggregation).
//! 4. [`window`] — adaptive window sizing from the mean degree, and the
//!    paper's revisit lower bound `Σ⌈d_i/ω⌉ − n`.
//! 5. [`edge_drop`] — DropEdge-style random edge removal (§IV-B5).
//! 6. [`schedule`] — [`schedule::AttentionSchedule`], the preprocessed
//!    artifact consumed by the GNN engines and the GPU simulator.
//!
//! # Quickstart
//!
//! ```
//! use mega_core::{MegaConfig, preprocess};
//! use mega_graph::GraphBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The example graph of Fig. 3a (7 nodes).
//! let g = GraphBuilder::undirected(7)
//!     .edges([(0, 1), (0, 5), (1, 2), (1, 5), (2, 3), (2, 6), (3, 6), (3, 4), (4, 6), (5, 6)])?
//!     .build()?;
//! let schedule = preprocess(&g, &MegaConfig::default())?;
//! // Every node appears at least once...
//! assert!(schedule.path().node_positions().iter().all(|p| !p.is_empty()));
//! // ...and with the default full coverage, every edge owns a band slot.
//! assert_eq!(schedule.band().covered_edge_count(), g.edge_count());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod config;
pub mod edge_drop;
pub mod error;
pub mod hetero;
pub mod parallel;
pub mod path;
pub mod persist;
pub mod schedule;
pub mod traversal;
pub mod window;

pub use band::BandMask;
pub use config::{CandidatePolicy, MegaConfig, WindowPolicy};
pub use error::MegaError;
pub use hetero::{preprocess_hetero, HeteroGraph, MultiPathSchedule};
pub use parallel::{Chunk, ChunkPlan, Parallelism};
pub use path::PathRepresentation;
pub use schedule::AttentionSchedule;
pub use traversal::{traverse, traverse_parallel, Traversal};
pub use window::{adaptive_window, revisit_lower_bound};

use mega_graph::Graph;

/// One-call preprocessing: traverse `g` under `config` and assemble the
/// [`AttentionSchedule`] used by training.
///
/// # Errors
///
/// Propagates [`MegaError`] from configuration validation or traversal (e.g.
/// an unsatisfiable coverage target after edge dropping).
pub fn preprocess(g: &Graph, config: &MegaConfig) -> Result<AttentionSchedule, MegaError> {
    let traversal = traverse(g, config)?;
    Ok(AttentionSchedule::from_traversal(g, traversal))
}
