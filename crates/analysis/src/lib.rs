//! mega-analysis: the workspace invariant linter behind the `mega-lint`
//! binary.
//!
//! The MEGA workspace makes promises that `rustc` cannot check: every
//! backend is bit-identical to the reference loops (so no FMA, no
//! horizontal reductions, no re-associated float folds), `unsafe` lives in
//! exactly one file with every site justified, console output and wall
//! clocks route through `mega-obs`, and result-affecting crates never
//! iterate seed-ordered hash collections. This crate turns those promises
//! into lint rules over the source tree, with findings reported as
//! `file:line: [rule] message` and enforced (non-zero exit) in CI.
//!
//! Two rule tiers share one pipeline:
//!
//! - **Token rules** match single scanned lines ([`scan`] strips comments
//!   and string literals first, so a banned identifier inside a doc
//!   comment or a log message never fires).
//! - **Graph rules** run over a whole-workspace call graph extracted from
//!   the same token stream ([`graph`]): determinism-taint propagation,
//!   the unsafe-reachability audit, the hot-path panic-surface audit, and
//!   span coverage. Their verdicts depend on *reachability*, not lexical
//!   occurrence.
//!
//! Rules are scoped by workspace-relative path and individually
//! suppressible at a site via a justified pragma, e.g.
//! `// mega-lint: allow(unordered-collection, reason = "membership test only")`.
//! A pragma that suppresses nothing is itself a `stale-pragma` finding.
//! Graph rules with a nonzero legacy surface are adoptable through the
//! checked-in ratchet (`crates/analysis/audit/ratchet.txt`): baseline
//! counts may only decrease. See [`Rule`] for the catalog and `DESIGN.md`
//! §9 for the contract each rule guards.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod graph;
mod includes;
mod pragma;
mod rules;
pub mod scan;
mod taint;
mod walk;

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub use walk::rust_sources;

/// The rule catalog. Each variant's [`Rule::id`] is the name used in
/// findings, pragmas, and the documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Fused multiply-add and horizontal-reduction identifiers
    /// (`mul_add`, `_mm*_fmadd_*`, `hadd`, `dp_ps`, `_mm*reduce*`) are
    /// banned everywhere: they round or fold differently from the
    /// reference loops and break cross-backend bit-exactness.
    NoFma,
    /// Iterator float accumulations (`sum::<f32>()` and friends) inside
    /// `crates/exec/src/` outside the audited kernels allowlist.
    FloatReassoc,
    /// `unsafe` outside `crates/exec/src/simd.rs`.
    UnsafeScope,
    /// An `unsafe` site without an adjacent `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// `println!`/`eprintln!`/`print!`/`eprint!` or raw
    /// `Instant::now`/`SystemTime::now` outside mega-obs, benches,
    /// examples, and tests.
    ObsRouting,
    /// `HashMap`/`HashSet` in a result-affecting crate's `src/` tree.
    UnorderedCollection,
    /// A fused composite-kernel `fn` definition (`*linear_relu*`,
    /// `*axpy*`, `*norm_act*`, ...) outside the audited fusion surface
    /// (`crates/exec/src/`, the tape planner, the GPU simulator). Fused
    /// arithmetic must go through the `Backend` trait so its bit-exactness
    /// proof lives in one reviewed place.
    FusionScope,
    /// A comment that carries the pragma marker but fails to parse as
    /// `allow(<rule>, reason = "...")`, names an unknown rule, or omits
    /// the reason. Never suppressible. Malformed audit/ratchet file lines
    /// also report here.
    BadPragma,
    /// A nondeterminism source (`Instant::now`, `SystemTime::now`,
    /// `available_parallelism`, RNG-from-entropy, `HashMap`/`HashSet`
    /// iteration) reaching result-affecting code through the call graph,
    /// outside audited boundary fns (see `taint` in DESIGN.md §9).
    DeterminismTaint,
    /// A public fn transitively reaching an `unsafe` block (over static
    /// call edges) that is not listed in the checked-in
    /// `crates/analysis/audit/unsafe_reach.txt` inventory — or a stale
    /// inventory entry that no longer reaches unsafe.
    UnsafeReach,
    /// A fn reachable from the hot kernel surface (exec kernels, the dist
    /// executor step loop) containing `panic!`/`assert!`/`.unwrap()`/
    /// `.expect()`; one finding per fn, at its definition line.
    PanicSurface,
    /// A public fn on the hot kernel surface that neither opens a
    /// `mega_obs` span nor runs under one, so roofline/report attribution
    /// cannot see it.
    SpanCoverage,
    /// A valid pragma that suppressed zero findings and intercepted no
    /// taint: the suppression outlived the code it excused. Never
    /// suppressible.
    StalePragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 13] = [
        Rule::NoFma,
        Rule::FloatReassoc,
        Rule::UnsafeScope,
        Rule::UndocumentedUnsafe,
        Rule::ObsRouting,
        Rule::UnorderedCollection,
        Rule::FusionScope,
        Rule::BadPragma,
        Rule::DeterminismTaint,
        Rule::UnsafeReach,
        Rule::PanicSurface,
        Rule::SpanCoverage,
        Rule::StalePragma,
    ];

    /// The kebab-case rule name used in findings and pragmas.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::NoFma => "no-fma",
            Rule::FloatReassoc => "float-reassoc",
            Rule::UnsafeScope => "unsafe-scope",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::ObsRouting => "obs-routing",
            Rule::UnorderedCollection => "unordered-collection",
            Rule::FusionScope => "fusion-scope",
            Rule::BadPragma => "bad-pragma",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::UnsafeReach => "unsafe-reach",
            Rule::PanicSurface => "panic-surface",
            Rule::SpanCoverage => "span-coverage",
            Rule::StalePragma => "stale-pragma",
        }
    }

    /// Resolves a rule name as written in a pragma.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation tied to the site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Ratchet state for one ratcheted rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetStatus {
    /// The ratcheted rule.
    pub rule: Rule,
    /// Post-suppression findings counted this run.
    pub count: usize,
    /// The checked-in baseline the count may not exceed.
    pub baseline: usize,
    /// 1-based line of the entry in the ratchet file.
    pub line: usize,
}

/// The full result of an analysis run: every post-suppression finding plus
/// ratchet state and the computed unsafe-reach inventory.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Number of files checked.
    pub files: usize,
    /// All findings after pragma suppression, sorted by (file, line,
    /// rule) — including findings a ratchet baseline tolerates.
    pub findings: Vec<Finding>,
    /// Per-rule ratchet state, in ratchet-file order.
    pub ratchet: Vec<RatchetStatus>,
    /// The computed sorted unsafe-reach inventory (what
    /// `crates/analysis/audit/unsafe_reach.txt` should contain).
    pub unsafe_reach: Vec<String>,
}

impl Analysis {
    /// The findings that gate CI: everything except findings of a
    /// ratcheted rule whose count is within baseline, plus one summary
    /// finding per over-baseline rule (anchored at the ratchet file).
    pub fn gate(&self) -> Vec<Finding> {
        let mut out: Vec<Finding> = self
            .findings
            .iter()
            .filter(|f| {
                self.ratchet
                    .iter()
                    .find(|r| r.rule == f.rule)
                    .is_none_or(|r| r.count > r.baseline)
            })
            .cloned()
            .collect();
        for r in &self.ratchet {
            if r.count > r.baseline {
                out.push(Finding {
                    file: audit::RATCHET_FILE.to_string(),
                    line: r.line,
                    rule: r.rule,
                    message: format!(
                        "{} `{}` findings exceed the ratchet baseline of {}; fix the \
                         new sites — the baseline only goes down",
                        r.count,
                        r.rule.id(),
                        r.baseline
                    ),
                });
            }
        }
        out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        out
    }

    /// True when [`Analysis::gate`] is empty.
    pub fn is_clean(&self) -> bool {
        self.gate().is_empty()
    }
}

/// Runs the full pipeline — token rules, call-graph rules, pragma
/// filtering, stale-pragma detection — over in-memory sources given as
/// `(physical_path, scope_path, text)` triples, with the audit/ratchet
/// file *contents* supplied directly (pass `""` for none).
pub fn analyze_sources(
    sources: &[(String, String, String)],
    unsafe_audit_text: &str,
    ratchet_text: &str,
) -> Analysis {
    let mut findings = Vec::new();
    let mut stripped = Vec::with_capacity(sources.len());
    let mut sups: BTreeMap<String, pragma::Suppressions> = BTreeMap::new();
    for (phys, scope, text) in sources {
        let lines = scan::strip(text);
        let (sup, bad) = pragma::collect(phys, &lines);
        findings.extend(bad);
        sups.insert(phys.clone(), sup);
        stripped.push((phys.as_str(), scope.as_str(), lines));
    }
    // Token rules, filtered per file (scoped by the logical path, anchored
    // at the physical one).
    for (phys, scope, lines) in &stripped {
        let mut raw = Vec::new();
        rules::run(scope, lines, &mut raw);
        let sup = &sups[*phys];
        findings.extend(
            raw.into_iter()
                .filter(|f| !sup.covers(f.line, f.rule))
                .map(|mut f| {
                    f.file = (*phys).to_string();
                    f
                }),
        );
    }
    // Graph rules over the whole set.
    let refs: Vec<(&str, &str, &[scan::Line])> = stripped
        .iter()
        .map(|(p, s, l)| (*p, *s, l.as_slice()))
        .collect();
    let g = graph::Graph::build(&refs);
    let mut graph_raw = Vec::new();
    taint::run(&g, &sups, &mut graph_raw);
    let audit_entries: Vec<String> = unsafe_audit_text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    audit::unsafe_reach(&g, &audit_entries, &mut graph_raw);
    audit::panic_surface(&g, &mut graph_raw);
    audit::span_coverage(&g, &mut graph_raw);
    findings.extend(
        graph_raw
            .into_iter()
            .filter(|f| !sups.get(&f.file).is_some_and(|s| s.covers(f.line, f.rule))),
    );
    // The ratchet file itself can be malformed.
    let ratchet = audit::Ratchet::parse(ratchet_text, &mut findings);
    // Stale pragmas — judged only after every rule has had its chance to
    // consume them.
    for (phys, sup) in &sups {
        for (line, rule) in sup.stale() {
            findings.push(Finding {
                file: phys.clone(),
                line,
                rule: Rule::StalePragma,
                message: format!(
                    "pragma `allow({})` suppresses nothing here; remove it or fix the \
                     rule id",
                    rule.id()
                ),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    let statuses = ratchet
        .entries()
        .iter()
        .map(|&(rule, baseline, line)| RatchetStatus {
            rule,
            count: findings.iter().filter(|f| f.rule == rule).count(),
            baseline,
            line,
        })
        .collect();
    Analysis {
        files: sources.len(),
        findings,
        ratchet: statuses,
        unsafe_reach: audit::unsafe_reachers(&g),
    }
}

/// Lints one file's source text as if it lived at the workspace-relative
/// `path` (path scoping is part of every rule, so the same text can be
/// clean at one path and a violation at another).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_source_as(path, path, source)
}

/// Lints one file's source text with rule scoping decided by `scope_path`
/// while findings (and pragma suppressions) stay anchored at the physical
/// `path`. This is how `#[path = "..."]` modules and `include!`d files are
/// judged by where their code *compiles* — e.g. a fragment `include!`d into
/// the SIMD backend inherits its `unsafe` exemption — while the report
/// still points at the file to edit. Runs with an empty unsafe-reach audit
/// and no ratchet.
pub fn lint_source_as(path: &str, scope_path: &str, source: &str) -> Vec<Finding> {
    let sources = vec![(path.to_string(), scope_path.to_string(), source.to_string())];
    analyze_sources(&sources, "", "").findings
}

/// Analyzes every Rust source under `root` (skipping `target/`, `shims/`,
/// fixture trees, and hidden directories), loading the unsafe-reach audit
/// and ratchet baselines from their checked-in locations under `root`.
///
/// A pre-pass resolves `#[path = "..."]` modules and `include!` targets so
/// each file is scoped at the path its code logically compiles at (see
/// [`lint_source_as`]); files outside the module tree's physical layout are
/// therefore judged by their includer's location, not their own.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let files = walk::rust_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(file)?));
    }
    let logical = includes::logical_paths(&sources);
    let triples: Vec<(String, String, String)> = sources
        .into_iter()
        .map(|(rel, text)| {
            let scope = logical.get(&rel).cloned().unwrap_or_else(|| rel.clone());
            (rel, scope, text)
        })
        .collect();
    let unsafe_txt = std::fs::read_to_string(root.join(audit::UNSAFE_AUDIT)).unwrap_or_default();
    let ratchet_txt = std::fs::read_to_string(root.join(audit::RATCHET_FILE)).unwrap_or_default();
    Ok(analyze_sources(&triples, &unsafe_txt, &ratchet_txt))
}

/// Lints every Rust source under `root` and returns the number of files
/// checked plus the CI-gating findings (ratchet-tolerated findings are
/// absorbed; see [`Analysis::gate`]).
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let a = analyze_workspace(root)?;
    Ok((a.files, a.gate()))
}

/// Renders an [`Analysis`] as a stable JSON document (hand-rolled — this
/// crate deliberately has zero dependencies). Findings carry a
/// `tolerated` flag when a ratchet baseline absorbs them.
pub fn render_json(a: &Analysis) -> String {
    let tolerated = |f: &Finding| {
        a.ratchet
            .iter()
            .any(|r| r.rule == f.rule && r.count <= r.baseline)
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files\": {},\n", a.files));
    out.push_str(&format!("  \"clean\": {},\n", a.is_clean()));
    out.push_str("  \"counts\": {");
    let mut first = true;
    for rule in Rule::ALL {
        let n = a.findings.iter().filter(|f| f.rule == rule).count();
        if n > 0 {
            if !first {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", rule.id(), n));
            first = false;
        }
    }
    out.push_str("},\n  \"ratchet\": [");
    for (i, r) in a.ratchet.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"count\": {}, \"baseline\": {}}}",
            r.rule.id(),
            r.count,
            r.baseline
        ));
    }
    out.push_str("],\n  \"findings\": [");
    for (i, f) in a.findings.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"tolerated\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            f.rule.id(),
            tolerated(f),
            json_str(&f.message)
        ));
    }
    if !a.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("not-a-rule"), None);
    }

    #[test]
    fn findings_render_file_line_rule() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: Rule::NoFma,
            message: "nope".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:7: [no-fma] nope");
    }

    #[test]
    fn path_scoping_changes_the_verdict() {
        let src = "// SAFETY: trusted\nunsafe { body() }\n";
        let away = lint_source("crates/core/src/a.rs", src);
        assert_eq!(away.len(), 1);
        assert_eq!(away[0].rule, Rule::UnsafeScope);
        assert!(lint_source("crates/exec/src/simd.rs", src).is_empty());
    }

    #[test]
    fn lint_source_as_scopes_logically_but_reports_physically() {
        let src = "// SAFETY: trusted\nunsafe { body() }\n";
        let as_simd = lint_source_as(
            "crates/exec/src/simd_part.rs",
            "crates/exec/src/simd.rs",
            src,
        );
        assert!(as_simd.is_empty(), "{as_simd:?}");
        let as_core = lint_source_as("crates/exec/src/simd_part.rs", "crates/core/src/a.rs", src);
        assert_eq!(as_core.len(), 1);
        assert_eq!(as_core[0].rule, Rule::UnsafeScope);
        assert_eq!(as_core[0].file, "crates/exec/src/simd_part.rs");
    }

    #[test]
    fn workspace_scoping_follows_path_attributes_and_includes() {
        let root = std::env::temp_dir().join(format!("mega-lint-includes-{}", std::process::id()));
        let exec = root.join("crates/exec/src");
        let core = root.join("crates/core");
        std::fs::create_dir_all(&exec).unwrap();
        std::fs::create_dir_all(core.join("src")).unwrap();
        std::fs::create_dir_all(core.join("extra")).unwrap();
        // A fragment include!d into the one sanctioned unsafe file must
        // inherit its exemption instead of firing unsafe-scope.
        std::fs::write(exec.join("simd.rs"), "include!(\"simd_part.rs\");\n").unwrap();
        std::fs::write(
            exec.join("simd_part.rs"),
            "// SAFETY: lanes bounds-checked by caller\nunsafe { go() }\n",
        )
        .unwrap();
        // A #[path] module physically outside core's src/ tree compiles
        // inside it, so order-sensitive rules must still apply there —
        // reported at the physical path, where the fix goes.
        std::fs::write(
            core.join("src/lib.rs"),
            "#[path = \"../extra/impl.rs\"]\nmod imp;\n",
        )
        .unwrap();
        std::fs::write(
            core.join("extra/impl.rs"),
            "use std::collections::HashMap;\n",
        )
        .unwrap();
        let (checked, findings) = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(checked, 4);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnorderedCollection);
        assert_eq!(findings[0].file, "crates/core/extra/impl.rs");
    }

    #[test]
    fn ratchet_tolerates_up_to_baseline_and_fails_above() {
        let src = "pub fn a() { x.unwrap(); }\npub fn b() { y.unwrap(); }\n".to_string();
        let files = vec![(
            "crates/exec/src/kernels.rs".to_string(),
            "crates/exec/src/kernels.rs".to_string(),
            src,
        )];
        let a = analyze_sources(&files, "", "panic-surface 2\nspan-coverage 2\n");
        let panics = a
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicSurface)
            .count();
        assert_eq!(panics, 2);
        assert!(
            a.gate().iter().all(|f| f.rule != Rule::PanicSurface),
            "within baseline → tolerated: {:?}",
            a.gate()
        );
        let tight = analyze_sources(&files, "", "panic-surface 1\nspan-coverage 2\n");
        let gate = tight.gate();
        assert_eq!(
            gate.iter().filter(|f| f.rule == Rule::PanicSurface).count(),
            3,
            "2 sites + 1 summary: {gate:?}"
        );
        assert!(gate
            .iter()
            .any(|f| f.file == audit::RATCHET_FILE && f.message.contains("baseline")));
    }

    #[test]
    fn json_output_is_well_formed_enough() {
        let src = "pub fn a() { x.unwrap(); }\n".to_string();
        let files = vec![(
            "crates/exec/src/kernels.rs".to_string(),
            "crates/exec/src/kernels.rs".to_string(),
            src,
        )];
        let a = analyze_sources(&files, "", "panic-surface 5\n");
        let json = render_json(&a);
        assert!(json.contains("\"files\": 1"));
        assert!(json.contains("\"panic-surface\""));
        assert!(json.contains("\"tolerated\": true"));
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
