//! Dataset generation parameters.

/// Split sizes and seed for a dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Training sample count.
    pub train: usize,
    /// Validation sample count.
    pub val: usize,
    /// Test sample count.
    pub test: usize,
    /// Random seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// The paper's ZINC split sizes (10000/1000/1000).
    pub fn paper_zinc(seed: u64) -> Self {
        DatasetSpec {
            train: 10_000,
            val: 1_000,
            test: 1_000,
            seed,
        }
    }

    /// The paper's AQSOL split sizes (7985/996/996).
    pub fn paper_aqsol(seed: u64) -> Self {
        DatasetSpec {
            train: 7_985,
            val: 996,
            test: 996,
            seed,
        }
    }

    /// The paper's CSL split sizes (90/30/30).
    pub fn paper_csl(seed: u64) -> Self {
        DatasetSpec {
            train: 90,
            val: 30,
            test: 30,
            seed,
        }
    }

    /// The paper's CYCLES split sizes (9000/1000/10000).
    pub fn paper_cycles(seed: u64) -> Self {
        DatasetSpec {
            train: 9_000,
            val: 1_000,
            test: 10_000,
            seed,
        }
    }

    /// A small split for CPU-scale experiments (400/80/80).
    pub fn small(seed: u64) -> Self {
        DatasetSpec {
            train: 400,
            val: 80,
            test: 80,
            seed,
        }
    }

    /// A tiny split for unit tests (24/8/8).
    pub fn tiny(seed: u64) -> Self {
        DatasetSpec {
            train: 24,
            val: 8,
            test: 8,
            seed,
        }
    }

    /// Total samples across splits.
    pub fn total(&self) -> usize {
        self.train + self.val + self.test
    }
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec::small(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_sizes_match_table_ii() {
        assert_eq!(DatasetSpec::paper_zinc(0).total(), 12_000);
        assert_eq!(DatasetSpec::paper_aqsol(0).total(), 9_977);
        assert_eq!(DatasetSpec::paper_csl(0).total(), 150);
        assert_eq!(DatasetSpec::paper_cycles(0).total(), 20_000);
    }

    #[test]
    fn default_is_small() {
        assert_eq!(DatasetSpec::default(), DatasetSpec::small(0));
    }
}
