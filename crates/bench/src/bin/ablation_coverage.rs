//! Ablation: edge-coverage target θ.
//!
//! §III-B: traversal may stop once θ of the edges are covered. Lower θ means
//! shorter paths (cheaper attention) but a lossier representation — measured
//! here with the WL aggregation-similarity score.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig, WindowPolicy};
use mega_graph::generate;
use mega_wl::path_similarity;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    theta: f64,
    achieved_coverage: f64,
    path_len: usize,
    expansion: f64,
    one_hop_similarity: f64,
    two_hop_similarity: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(4);
    let g = generate::erdos_renyi(200, 0.08, &mut rng).unwrap();
    mega_obs::data!("graph: n={} m={}\n", g.node_count(), g.edge_count());
    let mut table = TableWriter::new(&[
        "theta",
        "coverage",
        "path len",
        "expansion",
        "1-hop sim",
        "2-hop sim",
    ]);
    let mut rows = Vec::new();
    for &theta in &[0.3f64, 0.5, 0.7, 0.85, 0.95, 1.0] {
        let cfg = MegaConfig::default()
            .with_window(WindowPolicy::Fixed(2))
            .with_coverage(theta);
        let s = preprocess(&g, &cfg).unwrap();
        let st = s.stats();
        let s1 = path_similarity(&g, &s, 1);
        let s2 = path_similarity(&g, &s, 2);
        table.row(&[
            fmt(theta, 2),
            fmt(st.coverage, 3),
            st.path_len.to_string(),
            fmt(st.expansion, 2),
            fmt(s1, 3),
            fmt(s2, 3),
        ]);
        rows.push(Row {
            theta,
            achieved_coverage: st.coverage,
            path_len: st.path_len,
            expansion: st.expansion,
            one_hop_similarity: s1,
            two_hop_similarity: s2,
        });
    }
    mega_obs::data!("Ablation — edge coverage θ (ER graph, window 2)\n");
    table.print();
    mega_obs::data!(
        "\nExpected: path length grows with θ; 1-hop similarity reaches exactly 1.0 only\n\
         at θ = 1 — the efficiency/fidelity dial of the traversal objective."
    );
    save_json("ablation_coverage", &rows);
}
