//! Chunked parallel execution of banded attention schedules.
//!
//! This is the GNN-side face of the parallel band engine: a
//! [`BandScheduler`] pins one preprocessed [`AttentionSchedule`] to a
//! [`ChunkPlan`] and dispatches the banded forward/backward kernels (now
//! living in `mega-exec`, behind the [`Backend`] trait) over it under a
//! [`Parallelism`] budget, and [`preprocess_samples`] fans the per-graph
//! preprocessing of a batch out across the same thread pool.
//!
//! Determinism: every kernel here inherits the row-ownership guarantee of
//! the core engine — chunks own disjoint output row ranges and fold
//! contributions in serial slot order, so results are bit-identical to the
//! serial path for every thread count and chunk size.

use mega_core::parallel::{self, ChunkPlan, Parallelism};
use mega_core::{preprocess, AttentionSchedule, MegaConfig, MegaError};
use mega_datasets::GraphSample;
use mega_exec::{Backend, ReferenceBackend};
use mega_tensor::Tensor;
use std::sync::Arc;

/// Preprocesses every sample of a batch, fanning the independent per-graph
/// traversals out across the thread budget of `par`.
///
/// Results are collected in sample order, so the output is identical to a
/// serial `samples.iter().map(preprocess)` for every thread count; on
/// failure the error of the lowest-indexed failing sample is returned.
///
/// # Errors
///
/// Propagates the first [`MegaError`] (by sample index) from preprocessing.
pub fn preprocess_samples(
    samples: &[GraphSample],
    config: &MegaConfig,
    par: &Parallelism,
) -> Result<Vec<AttentionSchedule>, MegaError> {
    parallel::ordered_map(samples, par.effective_threads(), |_, s| {
        preprocess(&s.graph, config)
    })
    .into_iter()
    .collect()
}

/// A chunk scheduler for one preprocessed graph: splits the path of an
/// [`AttentionSchedule`] into overlapping segments and runs the banded
/// attention kernels per chunk on a thread pool.
#[derive(Debug)]
pub struct BandScheduler<'a> {
    sched: &'a AttentionSchedule,
    par: Parallelism,
    plan: Arc<ChunkPlan>,
    edge_count: usize,
    backend: Arc<dyn Backend>,
}

impl<'a> BandScheduler<'a> {
    /// Builds the chunk plan for `sched` under the budget of `par`, running
    /// kernels on the default [`ReferenceBackend`].
    pub fn new(sched: &'a AttentionSchedule, par: Parallelism) -> Self {
        Self::with_backend(sched, par, Arc::new(ReferenceBackend))
    }

    /// Builds the scheduler with an explicit execution backend.
    pub fn with_backend(
        sched: &'a AttentionSchedule,
        par: Parallelism,
        backend: Arc<dyn Backend>,
    ) -> Self {
        // Bands repeat across batches and epochs (the schedule is fixed per
        // graph), so the memoized plan builder shares one plan per
        // (band, parallelism) geometry for the whole process.
        let plan = ChunkPlan::for_band_cached(sched.band(), &par);
        let edge_count = sched.working_graph().edge_count();
        BandScheduler {
            sched,
            par,
            plan,
            edge_count,
            backend,
        }
    }

    /// The chunk plan (owned row ranges plus ±ω read extents).
    pub fn plan(&self) -> &ChunkPlan {
        &self.plan
    }

    /// The schedule this scheduler executes.
    pub fn schedule(&self) -> &AttentionSchedule {
        self.sched
    }

    /// Chunked banded aggregation forward pass.
    ///
    /// `x` is `L × dim` (one row per path position), `weights` holds one
    /// attention weight per working-graph edge. Returns the `L × dim`
    /// aggregate, bit-identical to the serial kernel.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows()` differs from the path length or `weights` is
    /// shorter than the working edge count.
    pub fn forward(&self, x: &Tensor, weights: &[f32]) -> Tensor {
        let band = self.sched.band();
        assert_eq!(
            x.rows(),
            band.len(),
            "x must have one row per path position"
        );
        assert!(
            weights.len() >= self.edge_count,
            "one weight per working edge"
        );
        let mut out = vec![0.0f32; x.rows() * x.cols()];
        self.backend
            .banded_aggregate(band, x.as_slice(), x.cols(), weights, &self.par, &mut out);
        Tensor::from_vec(x.rows(), x.cols(), out)
    }

    /// Chunked backward pass with respect to the inputs: `dx = A·d_out`
    /// (the band matrix is symmetric), bit-identical to serial.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`BandScheduler::forward`].
    pub fn backward_x(&self, d_out: &Tensor, weights: &[f32]) -> Tensor {
        let band = self.sched.band();
        assert_eq!(
            d_out.rows(),
            band.len(),
            "d_out must have one row per path position"
        );
        // The band matrix is symmetric, so dx = A·d_out — the same kernel.
        let mut dx = vec![0.0f32; d_out.rows() * d_out.cols()];
        self.backend.banded_aggregate(
            band,
            d_out.as_slice(),
            d_out.cols(),
            weights,
            &self.par,
            &mut dx,
        );
        Tensor::from_vec(d_out.rows(), d_out.cols(), dx)
    }

    /// Chunked backward pass with respect to the per-edge weights.
    ///
    /// Slots are partitioned by owning chunk, so each `dw[e]` is written by
    /// exactly one worker — bit-identical to serial.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `d_out` shapes differ or rows mismatch the path.
    pub fn weight_grad(&self, x: &Tensor, d_out: &Tensor) -> Vec<f32> {
        let band = self.sched.band();
        assert_eq!(x.shape(), d_out.shape(), "x and d_out must match");
        assert_eq!(
            x.rows(),
            band.len(),
            "x must have one row per path position"
        );
        let mut dw = vec![0.0f32; self.edge_count];
        self.backend.banded_weight_grad(
            band,
            x.as_slice(),
            d_out.as_slice(),
            x.cols(),
            self.edge_count,
            &self.par,
            &mut dw,
        );
        dw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_datasets::{zinc, DatasetSpec};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn samples() -> Vec<GraphSample> {
        zinc(&DatasetSpec::tiny(5))
            .train
            .into_iter()
            .take(6)
            .collect()
    }

    fn random_rows(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.gen_range(-1.0f32..1.0))
                .collect(),
        )
    }

    #[test]
    fn parallel_preprocess_matches_serial() {
        let ss = samples();
        let cfg = MegaConfig::default();
        let serial: Vec<_> = ss
            .iter()
            .map(|s| preprocess(&s.graph, &cfg).unwrap())
            .collect();
        for threads in [1, 2, 4] {
            let par = Parallelism::pinned(threads);
            let fanned = preprocess_samples(&ss, &cfg, &par).unwrap();
            assert_eq!(fanned.len(), serial.len());
            for (a, b) in fanned.iter().zip(&serial) {
                assert_eq!(a.path().nodes(), b.path().nodes(), "threads={threads}");
                assert_eq!(a.band().window(), b.band().window());
            }
        }
    }

    #[test]
    fn scheduler_forward_backward_bit_identical_to_serial() {
        let ss = samples();
        let cfg = MegaConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        for s in &ss {
            let sched = preprocess(&s.graph, &cfg).unwrap();
            let band = sched.band();
            let (len, dim) = (band.len(), 7);
            let edges = sched.working_graph().edge_count();
            let x = random_rows(&mut rng, len, dim);
            let d_out = random_rows(&mut rng, len, dim);
            let weights: Vec<f32> = (0..edges).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            let fwd_serial =
                mega_exec::kernels::banded_aggregate_serial(band, x.as_slice(), dim, &weights);
            let dw_serial = mega_exec::kernels::banded_weight_grad_serial(
                band,
                x.as_slice(),
                d_out.as_slice(),
                dim,
                edges,
            );
            for threads in [1, 2, 4, 8] {
                let ex = BandScheduler::new(&sched, Parallelism::pinned(threads));
                let fwd = ex.forward(&x, &weights);
                let bwd = ex.backward_x(&d_out, &weights);
                let dw = ex.weight_grad(&x, &d_out);
                for (a, b) in fwd.as_slice().iter().zip(&fwd_serial) {
                    assert_eq!(a.to_bits(), b.to_bits(), "forward, threads={threads}");
                }
                let bwd_serial = mega_exec::kernels::banded_aggregate_serial(
                    band,
                    d_out.as_slice(),
                    dim,
                    &weights,
                );
                for (a, b) in bwd.as_slice().iter().zip(&bwd_serial) {
                    assert_eq!(a.to_bits(), b.to_bits(), "backward_x, threads={threads}");
                }
                for (a, b) in dw.iter().zip(&dw_serial) {
                    assert_eq!(a.to_bits(), b.to_bits(), "weight_grad, threads={threads}");
                }
            }
        }
    }

    #[test]
    fn scheduler_plan_covers_path() {
        let ss = samples();
        let sched = preprocess(&ss[0].graph, &MegaConfig::default()).unwrap();
        let ex = BandScheduler::new(&sched, Parallelism::pinned(4).with_chunk_size(3));
        let plan = ex.plan();
        assert_eq!(plan.len(), sched.path().len());
        let covered: usize = plan.chunks().iter().map(|c| c.owned_len()).sum();
        assert_eq!(covered, plan.len(), "owned ranges partition the path");
    }
}
