//! mega-analysis: the workspace invariant linter behind the `mega-lint`
//! binary.
//!
//! The MEGA workspace makes promises that `rustc` cannot check: every
//! backend is bit-identical to the reference loops (so no FMA, no
//! horizontal reductions, no re-associated float folds), `unsafe` lives in
//! exactly one file with every site justified, console output and wall
//! clocks route through `mega-obs`, and result-affecting crates never
//! iterate seed-ordered hash collections. This crate turns those promises
//! into token-level lint rules over the source tree, with findings
//! reported as `file:line: [rule] message` and enforced (non-zero exit) in
//! CI.
//!
//! Rules are scoped by workspace-relative path and individually
//! suppressible at a site via a justified pragma, e.g.
//! `// mega-lint: allow(unordered-collection, reason = "membership test only")`.
//! See [`Rule`] for the catalog and `DESIGN.md` §9 for the contract each
//! rule guards.
//!
//! The scanner ([`scan`]) strips comments and string literals first, so a
//! banned identifier inside a doc comment or a log message never fires,
//! and matches identifiers at word boundaries, so `unsafe_op_in_unsafe_fn`
//! never trips the `unsafe` rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod includes;
mod pragma;
mod rules;
pub mod scan;
mod walk;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

pub use walk::rust_sources;

/// The rule catalog. Each variant's [`Rule::id`] is the name used in
/// findings, pragmas, and the documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Fused multiply-add and horizontal-reduction identifiers
    /// (`mul_add`, `_mm*_fmadd_*`, `hadd`, `dp_ps`, `_mm*reduce*`) are
    /// banned everywhere: they round or fold differently from the
    /// reference loops and break cross-backend bit-exactness.
    NoFma,
    /// Iterator float accumulations (`sum::<f32>()` and friends) inside
    /// `crates/exec/src/` outside the audited kernels allowlist.
    FloatReassoc,
    /// `unsafe` outside `crates/exec/src/simd.rs`.
    UnsafeScope,
    /// An `unsafe` site without an adjacent `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// `println!`/`eprintln!`/`print!`/`eprint!` or raw
    /// `Instant::now`/`SystemTime::now` outside mega-obs, benches,
    /// examples, and tests.
    ObsRouting,
    /// `HashMap`/`HashSet` in a result-affecting crate's `src/` tree.
    UnorderedCollection,
    /// A fused composite-kernel `fn` definition (`*linear_relu*`,
    /// `*axpy*`, `*norm_act*`, ...) outside the audited fusion surface
    /// (`crates/exec/src/`, the tape planner, the GPU simulator). Fused
    /// arithmetic must go through the `Backend` trait so its bit-exactness
    /// proof lives in one reviewed place.
    FusionScope,
    /// A comment that carries the pragma marker but fails to parse as
    /// `allow(<rule>, reason = "...")`, names an unknown rule, or omits
    /// the reason. Never suppressible.
    BadPragma,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 8] = [
        Rule::NoFma,
        Rule::FloatReassoc,
        Rule::UnsafeScope,
        Rule::UndocumentedUnsafe,
        Rule::ObsRouting,
        Rule::UnorderedCollection,
        Rule::FusionScope,
        Rule::BadPragma,
    ];

    /// The kebab-case rule name used in findings and pragmas.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::NoFma => "no-fma",
            Rule::FloatReassoc => "float-reassoc",
            Rule::UnsafeScope => "unsafe-scope",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::ObsRouting => "obs-routing",
            Rule::UnorderedCollection => "unordered-collection",
            Rule::FusionScope => "fusion-scope",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Resolves a rule name as written in a pragma.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One lint violation at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation tied to the site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints one file's source text as if it lived at the workspace-relative
/// `path` (path scoping is part of every rule, so the same text can be
/// clean at one path and a violation at another).
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    lint_source_as(path, path, source)
}

/// Lints one file's source text with rule scoping decided by `scope_path`
/// while findings (and pragma suppressions) stay anchored at the physical
/// `path`. This is how `#[path = "..."]` modules and `include!`d files are
/// judged by where their code *compiles* — e.g. a fragment `include!`d into
/// the SIMD backend inherits its `unsafe` exemption — while the report
/// still points at the file to edit.
pub fn lint_source_as(path: &str, scope_path: &str, source: &str) -> Vec<Finding> {
    let lines = scan::strip(source);
    let (suppressions, mut findings) = pragma::collect(path, &lines);
    let mut raw = Vec::new();
    rules::run(scope_path, &lines, &mut raw);
    findings.extend(
        raw.into_iter()
            .filter(|f| !suppressions.covers(f.line, f.rule))
            .map(|mut f| {
                f.file = path.to_string();
                f
            }),
    );
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Lints every Rust source under `root` (skipping `target/`, `shims/`,
/// fixture trees, and hidden directories). Returns the number of files
/// checked plus all findings, sorted by file then line.
///
/// A pre-pass resolves `#[path = "..."]` modules and `include!` targets so
/// each file is scoped at the path its code logically compiles at (see
/// [`lint_source_as`]); files outside the module tree's physical layout are
/// therefore judged by their includer's location, not their own.
pub fn lint_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let files = walk::rust_sources(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(file)?));
    }
    let logical = includes::logical_paths(&sources);
    let mut findings = Vec::new();
    for (rel, source) in &sources {
        let scope = logical.get(rel).map(String::as_str).unwrap_or(rel);
        findings.extend(lint_source_as(rel, scope, source));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok((files.len(), findings))
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("not-a-rule"), None);
    }

    #[test]
    fn findings_render_file_line_rule() {
        let f = Finding {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: Rule::NoFma,
            message: "nope".into(),
        };
        assert_eq!(f.to_string(), "crates/core/src/x.rs:7: [no-fma] nope");
    }

    #[test]
    fn path_scoping_changes_the_verdict() {
        let src = "// SAFETY: trusted\nunsafe { body() }\n";
        let away = lint_source("crates/core/src/a.rs", src);
        assert_eq!(away.len(), 1);
        assert_eq!(away[0].rule, Rule::UnsafeScope);
        assert!(lint_source("crates/exec/src/simd.rs", src).is_empty());
    }

    #[test]
    fn lint_source_as_scopes_logically_but_reports_physically() {
        let src = "// SAFETY: trusted\nunsafe { body() }\n";
        let as_simd = lint_source_as(
            "crates/exec/src/simd_part.rs",
            "crates/exec/src/simd.rs",
            src,
        );
        assert!(as_simd.is_empty(), "{as_simd:?}");
        let as_core = lint_source_as("crates/exec/src/simd_part.rs", "crates/core/src/a.rs", src);
        assert_eq!(as_core.len(), 1);
        assert_eq!(as_core[0].rule, Rule::UnsafeScope);
        assert_eq!(as_core[0].file, "crates/exec/src/simd_part.rs");
    }

    #[test]
    fn workspace_scoping_follows_path_attributes_and_includes() {
        let root = std::env::temp_dir().join(format!("mega-lint-includes-{}", std::process::id()));
        let exec = root.join("crates/exec/src");
        let core = root.join("crates/core");
        std::fs::create_dir_all(&exec).unwrap();
        std::fs::create_dir_all(core.join("src")).unwrap();
        std::fs::create_dir_all(core.join("extra")).unwrap();
        // A fragment include!d into the one sanctioned unsafe file must
        // inherit its exemption instead of firing unsafe-scope.
        std::fs::write(exec.join("simd.rs"), "include!(\"simd_part.rs\");\n").unwrap();
        std::fs::write(
            exec.join("simd_part.rs"),
            "// SAFETY: lanes bounds-checked by caller\nunsafe { go() }\n",
        )
        .unwrap();
        // A #[path] module physically outside core's src/ tree compiles
        // inside it, so order-sensitive rules must still apply there —
        // reported at the physical path, where the fix goes.
        std::fs::write(
            core.join("src/lib.rs"),
            "#[path = \"../extra/impl.rs\"]\nmod imp;\n",
        )
        .unwrap();
        std::fs::write(
            core.join("extra/impl.rs"),
            "use std::collections::HashMap;\n",
        )
        .unwrap();
        let (checked, findings) = lint_workspace(&root).unwrap();
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(checked, 4);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::UnorderedCollection);
        assert_eq!(findings[0].file, "crates/core/extra/impl.rs");
    }
}
