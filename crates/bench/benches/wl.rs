//! Criterion benches of the Weisfeiler-Lehman machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mega_core::{preprocess, MegaConfig};
use mega_graph::generate;
use mega_wl::{labels, path_similarity, subtree_similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("wl_refine");
    let mut rng = StdRng::seed_from_u64(5);
    for n in [100usize, 400] {
        let g = generate::barabasi_albert(n, 3, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("3-rounds", n), &g, |b, g| {
            b.iter(|| labels::refine(g, 3))
        });
    }
    group.finish();
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("wl_similarity");
    let mut rng = StdRng::seed_from_u64(6);
    let g = generate::erdos_renyi(150, 0.05, &mut rng).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    group.bench_function("path_2hop", |b| b.iter(|| path_similarity(&g, &s, 2)));
    let h = generate::erdos_renyi(150, 0.05, &mut rng).unwrap();
    group.bench_function("subtree_kernel", |b| {
        b.iter(|| subtree_similarity(&g, &h, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_refinement, bench_similarity);
criterion_main!(benches);
