//! Glue to the GPU cost model: stamps training epochs with simulated
//! GTX 1080 wall-clock time.

use crate::config::{EngineChoice, GnnConfig, ModelKind};
use mega_core::AttentionSchedule;
use mega_datasets::GraphSample;
use mega_gpu_sim::{BatchTopology, DeviceConfig, EngineKind, EpochCost, GnnCostModel, ModelSpec};

pub use mega_gpu_sim::model::BatchTopology as Topology;

/// The Table I operator counts for a model configuration.
pub fn model_spec(config: &GnnConfig) -> ModelSpec {
    match config.kind {
        ModelKind::GatedGcn => ModelSpec::gated_gcn(config.hidden_dim, config.layers),
        ModelKind::GraphTransformer => {
            ModelSpec::graph_transformer(config.hidden_dim, config.layers)
        }
        ModelKind::Gat => ModelSpec::gat(config.hidden_dim, config.layers),
    }
}

/// Builds the simulator topology for a representative batch.
pub fn topology(samples: &[GraphSample], schedules: Option<&[AttentionSchedule]>) -> BatchTopology {
    let graphs: Vec<mega_graph::Graph> = samples.iter().map(|s| s.graph.clone()).collect();
    match schedules {
        Some(s) => BatchTopology::from_graphs_with_schedules(&graphs, s),
        None => BatchTopology::from_graphs(&graphs),
    }
}

/// Simulated cost of one epoch of `steps` batches shaped like `samples`.
pub fn epoch_cost(
    config: &GnnConfig,
    engine: EngineChoice,
    samples: &[GraphSample],
    schedules: Option<&[AttentionSchedule]>,
    steps: usize,
) -> EpochCost {
    let topo = topology(samples, schedules);
    let kind = match engine {
        EngineChoice::Baseline => EngineKind::DglBaseline,
        EngineChoice::Mega => EngineKind::Mega,
    };
    GnnCostModel::new(DeviceConfig::gtx_1080(), model_spec(config), kind).epoch_cost(&topo, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_datasets::{zinc, DatasetSpec};

    #[test]
    fn spec_mapping() {
        let cfg = GnnConfig::new(ModelKind::GatedGcn, 4, 4, 1)
            .with_hidden(64)
            .with_layers(3);
        let spec = model_spec(&cfg);
        assert_eq!(spec.scatter_calls, 1);
        let cfg = GnnConfig::new(ModelKind::GraphTransformer, 4, 4, 1);
        assert_eq!(model_spec(&cfg).scatter_calls, 5);
    }

    #[test]
    fn mega_epoch_costs_less() {
        let ds = zinc(&DatasetSpec::tiny(9));
        let samples = &ds.train[..16];
        let schedules: Vec<_> = samples
            .iter()
            .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
            .collect();
        let cfg = GnnConfig::new(ModelKind::GraphTransformer, ds.node_vocab, ds.edge_vocab, 1)
            .with_hidden(64)
            .with_layers(2);
        let base = epoch_cost(&cfg, EngineChoice::Baseline, samples, None, 5);
        let mega = epoch_cost(&cfg, EngineChoice::Mega, samples, Some(&schedules), 5);
        assert!(mega.epoch_seconds < base.epoch_seconds);
        assert!(base.epoch_seconds > 0.0);
    }
}
