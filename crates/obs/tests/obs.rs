//! Property-style tests of the histogram percentile guarantee against a
//! sorted-vec oracle: for every recorded distribution and quantile, the
//! reported percentile `p` and the exact rank value `e` satisfy
//! `e ≤ p ≤ 2·max(e, 1)`.
//!
//! No external dependency: a seeded xorshift generator supplies the random
//! distributions, so the test is deterministic.

use mega_obs::Histogram;

/// Deterministic xorshift64* stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn check_against_oracle(samples: &[u64]) {
    let mut h = Histogram::new();
    let mut sorted = samples.to_vec();
    for &v in samples {
        h.record(v);
    }
    sorted.sort_unstable();
    assert_eq!(h.count(), samples.len() as u64);
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.percentile(q);
        assert!(
            approx >= exact,
            "q={q}: approx {approx} below exact {exact} (n={})",
            sorted.len()
        );
        assert!(
            approx <= 2 * exact.max(1),
            "q={q}: approx {approx} above 2x exact {exact} (n={})",
            sorted.len()
        );
    }
}

#[test]
fn percentiles_match_sorted_oracle_uniform() {
    for seed in 1..=8u64 {
        let mut rng = XorShift(seed);
        let samples: Vec<u64> = (0..4096).map(|_| rng.next() % 1_000_000).collect();
        check_against_oracle(&samples);
    }
}

#[test]
fn percentiles_match_sorted_oracle_skewed() {
    // Heavy-tailed: mostly tiny values with rare large outliers — the
    // regime timing histograms actually see.
    for seed in 11..=14u64 {
        let mut rng = XorShift(seed);
        let samples: Vec<u64> = (0..4096)
            .map(|_| {
                let v = rng.next();
                if v.is_multiple_of(100) {
                    v % 1_000_000_000
                } else {
                    v % 64
                }
            })
            .collect();
        check_against_oracle(&samples);
    }
}

#[test]
fn percentiles_exact_on_powers_of_two_and_zero() {
    let mut h = Histogram::new();
    for _ in 0..10 {
        h.record(0);
    }
    assert_eq!(h.percentile(0.5), 0);
    let mut h = Histogram::new();
    for _ in 0..10 {
        h.record(64);
    }
    // 64 lands in bucket [64, 128); the upper bound is 127.
    assert!(h.percentile(0.5) >= 64 && h.percentile(0.5) < 128);
}
