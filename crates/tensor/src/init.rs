//! Weight initializers.

use crate::tensor::Tensor;
use rand::Rng;

/// Xavier/Glorot uniform initialization: samples from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// # Example
///
/// ```
/// use mega_tensor::init;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let w = init::xavier_uniform(64, 32, &mut rng);
/// assert_eq!(w.shape(), (64, 32));
/// ```
pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// He/Kaiming uniform initialization for ReLU networks:
/// `U(-√(6/fan_in), +√(6/fan_in))`.
pub fn he_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let bound = (6.0 / rows.max(1) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform<R: Rng>(rows: usize, cols: usize, bound: f32, rng: &mut R) -> Tensor {
    let b = bound.abs().max(f32::MIN_POSITIVE);
    let data = (0..rows * cols).map(|_| rng.gen_range(-b..b)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_values_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(100, 50, &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound));
        // Non-degenerate.
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn he_bound_depends_on_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = he_uniform(24, 8, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(w.as_slice().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        let b = xavier_uniform(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
