//! Serial/parallel equivalence harness for the band-execution engine.
//!
//! Two families of guarantees:
//!
//! 1. **Exactness** — banded aggregation over the path layout computes the
//!    same weighted 1-hop aggregation as dense masked attention over the
//!    path positions (the band mask *is* the adjacency, relocated).
//! 2. **Determinism** — the chunked parallel engine is bit-identical to the
//!    serial kernel for every thread count and chunk size, because chunks
//!    own disjoint output rows and fold contributions in serial slot order.

use mega::core::parallel::Parallelism;
use mega::core::{preprocess, traverse, traverse_parallel, MegaConfig};
use mega::datasets::{zinc, DatasetSpec};
use mega::exec::kernels::{
    banded_aggregate, banded_aggregate_serial, banded_weight_grad, banded_weight_grad_serial,
};
use mega::graph::generate;
use mega::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIM: usize = 9;

fn random_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Weights bounded away from zero so the dense reference's zero-skipping
/// matmul and the band kernel see exactly the same contribution set.
fn random_weights(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(0.1f32..1.0)).collect()
}

/// Banded aggregation equals dense masked attention: materialize the band
/// as a dense `L × L` symmetric weight matrix (zero outside the mask) and
/// compare `A · x` against the band kernel.
#[test]
fn banded_aggregation_equals_dense_masked_attention() {
    let mut rng = StdRng::seed_from_u64(101);
    let ds = zinc(&DatasetSpec::tiny(3));
    let mut graphs: Vec<_> = ds.train.iter().take(6).map(|s| s.graph.clone()).collect();
    graphs.push(generate::erdos_renyi(60, 0.08, &mut rng).unwrap());
    graphs.push(generate::barabasi_albert(80, 3, &mut rng).unwrap());
    for g in &graphs {
        let sched = preprocess(g, &MegaConfig::default()).unwrap();
        let band = sched.band();
        let len = band.len();
        let weights = random_weights(&mut rng, sched.working_graph().edge_count());
        let x = random_vec(&mut rng, len * DIM);

        let mut dense = Tensor::zeros(len, len);
        for slot in band.active_slots() {
            dense.set(slot.lo, slot.hi, weights[slot.edge]);
            dense.set(slot.hi, slot.lo, weights[slot.edge]);
        }
        let xt = Tensor::from_vec(len, DIM, x.clone());
        let reference = dense.matmul(&xt);

        let banded = banded_aggregate_serial(band, &x, DIM, &weights);
        for (i, (a, b)) in banded.iter().zip(reference.as_slice()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                "row {} lane {}: banded {a} vs dense {b}",
                i / DIM,
                i % DIM
            );
        }
    }
}

/// The chunked parallel engine is bit-for-bit identical to the serial
/// kernel across thread counts {1, 2, 4, 8} and chunk sizes {ω, 4ω, n} —
/// forward aggregation and both backward passes.
#[test]
fn parallel_chunked_bit_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(7);
    let graphs = [
        generate::barabasi_albert(500, 3, &mut rng).unwrap(),
        generate::erdos_renyi(300, 0.03, &mut rng).unwrap(),
    ];
    for g in &graphs {
        let sched = preprocess(g, &MegaConfig::default()).unwrap();
        let band = sched.band();
        let (len, omega) = (band.len(), band.window());
        let edges = sched.working_graph().edge_count();
        let x = random_vec(&mut rng, len * DIM);
        let d_out = random_vec(&mut rng, len * DIM);
        let weights = random_weights(&mut rng, edges);

        let fwd_serial = banded_aggregate_serial(band, &x, DIM, &weights);
        let dw_serial = banded_weight_grad_serial(band, &x, &d_out, DIM, edges);

        for threads in [1usize, 2, 4, 8] {
            for chunk in [omega, 4 * omega, len] {
                let par = Parallelism::pinned(threads).with_chunk_size(chunk);
                let fwd = banded_aggregate(band, &x, DIM, &weights, &par);
                assert_eq!(fwd.len(), fwd_serial.len());
                for (a, b) in fwd.iter().zip(&fwd_serial) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "forward, threads={threads} chunk={chunk}"
                    );
                }
                let dw = banded_weight_grad(band, &x, &d_out, DIM, edges, &par);
                for (a, b) in dw.iter().zip(&dw_serial) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "dw, threads={threads} chunk={chunk}"
                    );
                }
            }
        }
    }
}

/// Multi-agent parallel traversal produces the same stitched path for every
/// thread count (the agent partition, not the pool size, fixes the output).
#[test]
fn parallel_traversal_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(29);
    let g = generate::barabasi_albert(400, 3, &mut rng).unwrap();
    let cfg = MegaConfig::default();
    let reference = traverse_parallel(&g, &cfg, 4, &Parallelism::with_threads(1)).unwrap();
    for threads in [2usize, 4, 8] {
        let t = traverse_parallel(&g, &cfg, 4, &Parallelism::pinned(threads)).unwrap();
        assert_eq!(t.path, reference.path, "threads={threads}");
        assert_eq!(t.revisits, reference.revisits);
    }
    // And one agent degenerates to the serial traversal exactly.
    let serial = traverse(&g, &cfg).unwrap();
    let one = traverse_parallel(&g, &cfg, 1, &Parallelism::pinned(4)).unwrap();
    assert_eq!(one.path, serial.path);
}

/// The autograd tape's parallel matmul keeps losses and gradients
/// bit-identical across thread budgets.
#[test]
fn tape_parallelism_bit_identical_gradients() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::from_vec(40, 33, random_vec(&mut rng, 40 * 33));
    let b = Tensor::from_vec(33, 21, random_vec(&mut rng, 33 * 21));

    let run = |threads: usize| {
        let mut tape = mega::tensor::Tape::new();
        tape.set_parallelism(Parallelism::pinned(threads));
        let va = tape.leaf(a.clone());
        let vb = tape.leaf(b.clone());
        let prod = tape.matmul(va, vb);
        let loss = tape.sum(prod);
        let grads = tape.backward(loss);
        (
            tape.value(loss).at(0, 0),
            grads.wrt(va).as_slice().to_vec(),
            grads.wrt(vb).as_slice().to_vec(),
        )
    };

    let (l1, ga1, gb1) = run(1);
    for threads in [2usize, 4, 8] {
        let (l, ga, gb) = run(threads);
        assert_eq!(l.to_bits(), l1.to_bits(), "loss, threads={threads}");
        for (x, y) in ga.iter().zip(&ga1) {
            assert_eq!(x.to_bits(), y.to_bits(), "grad a, threads={threads}");
        }
        for (x, y) in gb.iter().zip(&gb1) {
            assert_eq!(x.to_bits(), y.to_bits(), "grad b, threads={threads}");
        }
    }
}
