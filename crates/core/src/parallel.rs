//! Parallel band execution: chunked, deterministic banded aggregation.
//!
//! The width-ω band makes attention *local in path position*: every pair
//! `(i, j)` with an active slot satisfies `|i - j| ≤ ω`. This module exploits
//! that locality to split the path into `ceil(L / chunk)` segments whose read
//! extents overlap by exactly ω positions, so **no in-band pair straddles a
//! cut**: every active [`BandSlot`](crate::band::BandSlot) relevant to a chunk's owned rows is fully
//! visible inside that chunk's extent.
//!
//! # Determinism guarantee
//!
//! Each chunk *owns* a disjoint range of output rows and computes them by
//! folding slot contributions in the same ascending `(lo, offset)` order the
//! serial kernel uses. Because row accumulators are per-row and never shared
//! across chunks, the parallel result is **bit-identical** to the serial
//! result for every thread count and every chunk size — there is no
//! cross-chunk floating-point re-association at all. The reduction step is a
//! plain in-order concatenation of owned row ranges.
//!
//! Worker threads are plain `std::thread::scope` workers pulling chunk
//! indices from an atomic counter; results land in their slot of a
//! pre-allocated vector, so scheduling order cannot affect output order.

use crate::band::BandMask;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Thread-count and chunking knobs for the parallel band engine.
///
/// `threads == 0` means "auto": use `RAYON_NUM_THREADS` when set (the
/// conventional env var, honored for CI compatibility even though the pool is
/// std-based), otherwise [`std::thread::available_parallelism`]. An explicit
/// non-zero `threads` always wins over the environment.
///
/// `chunk_size == 0` means "auto": size chunks so each worker gets several,
/// with a floor of the band window ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Parallelism {
    /// Worker thread count; 0 = auto (env, then hardware).
    pub threads: usize,
    /// Owned rows per chunk; 0 = auto.
    pub chunk_size: usize,
}

impl Parallelism {
    /// A config pinned to `threads` workers (0 = auto).
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads,
            chunk_size: 0,
        }
    }

    /// Sets the owned-rows-per-chunk size (0 = auto).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Resolves the worker count actually used.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Resolves the owned-rows-per-chunk size for a path of length `len`
    /// under window ω.
    pub fn effective_chunk_size(&self, len: usize, window: usize) -> usize {
        if self.chunk_size > 0 {
            return self.chunk_size.max(1);
        }
        let workers = self.effective_threads();
        // Several chunks per worker for load balance, floored at ω so the
        // overlap stays a small fraction of each chunk.
        (len / (4 * workers).max(1)).max(window).max(1)
    }
}

/// One segment of the path: owns rows `[start, end)` exclusively and reads
/// rows/slots from the extended range `[read_lo, read_hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First owned row.
    pub start: usize,
    /// One past the last owned row.
    pub end: usize,
    /// First readable row (`start` minus ω, clamped to 0).
    pub read_lo: usize,
    /// One past the last readable row (`end` plus ω, clamped to the length).
    pub read_hi: usize,
}

impl Chunk {
    /// Number of owned rows.
    pub fn owned_len(&self) -> usize {
        self.end - self.start
    }
}

/// The chunk decomposition of a path of length `len` under window ω.
///
/// Invariants (property-tested in `crates/core/tests/proptests.rs`):
///
/// * owned ranges partition `[0, len)` in order (cover, no gaps, no overlap);
/// * each read extent extends the owned range by exactly ω on both sides,
///   clamped at the path boundaries;
/// * every active [`BandSlot`] is *owned* by exactly one chunk — the one
///   whose owned range contains `slot.lo` — and both its endpoints lie
///   inside that chunk's read extent (`hi ≤ lo + ω < end + ω`).
///
/// [`BandSlot`]: crate::band::BandSlot
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    len: usize,
    window: usize,
    chunks: Vec<Chunk>,
}

impl ChunkPlan {
    /// Splits `[0, len)` into `ceil(len / chunk_size)` chunks with ω-overlap
    /// read extents.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn build(len: usize, window: usize, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk_size must be >= 1");
        let mut chunks = Vec::with_capacity(len / chunk_size + 1);
        let mut start = 0;
        while start < len {
            let end = (start + chunk_size).min(len);
            chunks.push(Chunk {
                start,
                end,
                read_lo: start.saturating_sub(window),
                read_hi: (end + window).min(len),
            });
            start = end;
        }
        if len == 0 {
            // A single empty chunk keeps downstream map/reduce uniform.
            chunks.push(Chunk {
                start: 0,
                end: 0,
                read_lo: 0,
                read_hi: 0,
            });
        }
        ChunkPlan {
            len,
            window,
            chunks,
        }
    }

    /// The plan a `Parallelism` config resolves to for this band geometry.
    pub fn for_band(band: &BandMask, par: &Parallelism) -> Self {
        let plan = Self::build(
            band.len(),
            band.window(),
            par.effective_chunk_size(band.len(), band.window()),
        );
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.plans", 1);
            mega_obs::record_value("core.parallel.plan_chunks", plan.chunks.len() as u64);
            for c in &plan.chunks {
                mega_obs::record_value("core.parallel.chunk_rows", c.owned_len() as u64);
            }
        }
        plan
    }

    /// Path length covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the covered path is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window ω the plan was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The chunks in path order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Index of the chunk owning row (or slot `lo`) `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn owner_of(&self, pos: usize) -> usize {
        assert!(
            pos < self.len,
            "position {pos} outside path of length {}",
            self.len
        );
        self.chunks.partition_point(|c| c.end <= pos)
    }
}

/// Maps `f` over `items` on a scoped worker pool, preserving input order.
///
/// Workers pull indices from an atomic counter; each result lands in its own
/// pre-allocated slot, so the output `Vec` is index-ordered regardless of
/// scheduling. With `threads <= 1` (or one item) the map runs inline.
pub fn ordered_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.inline_runs", 1);
        }
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    if mega_obs::enabled() {
        mega_obs::counter_add("core.parallel.pool_runs", 1);
        mega_obs::record_value("core.parallel.pool_items", items.len() as u64);
        mega_obs::record_value("core.parallel.pool_workers", workers as u64);
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut done = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(out);
                    done += 1;
                }
                // Items-per-worker is scheduling-dependent, hence volatile.
                if done > 0 && mega_obs::enabled() {
                    mega_obs::record_volatile("core.parallel.worker_items", done);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

// The banded aggregation / weight-grad kernels that used to live here moved
// to `mega-exec` (`mega_exec::kernels::banded_*`): they are execution-backend
// concerns now, dispatched through the `Backend` trait alongside the dense
// kernels. This module keeps the *scheduling* primitives they run on.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_plan_partitions_and_overlaps() {
        let plan = ChunkPlan::build(103, 4, 10);
        let chunks = plan.chunks();
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 103);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            // Read extents overlap by exactly 2ω across a cut (ω each side).
            assert_eq!(w[0].read_hi, (w[0].end + 4).min(103));
            assert_eq!(w[1].read_lo, w[1].start - 4);
        }
    }

    #[test]
    fn owner_of_matches_owned_ranges() {
        let plan = ChunkPlan::build(57, 3, 8);
        for (ci, c) in plan.chunks().iter().enumerate() {
            for r in c.start..c.end {
                assert_eq!(plan.owner_of(r), ci);
            }
        }
    }

    #[test]
    fn empty_plan_has_one_empty_chunk() {
        let plan = ChunkPlan::build(0, 2, 8);
        assert!(plan.is_empty());
        assert_eq!(plan.chunks().len(), 1);
        assert_eq!(plan.chunks()[0].owned_len(), 0);
    }

    #[test]
    fn ordered_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = ordered_map(&items, 8, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(doubled, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_prefers_explicit() {
        assert_eq!(Parallelism::with_threads(3).effective_threads(), 3);
        assert!(Parallelism::default().effective_threads() >= 1);
    }
}
