//! Shared harness for the per-figure/per-table benchmark binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper: it prints the same rows/series the paper reports and writes a JSON
//! record under `bench_results/` for EXPERIMENTS.md. Criterion benches of the
//! hot paths live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mega_datasets::{aqsol, csl, cycles, zinc, Dataset, DatasetSpec};
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The directory JSON results are written to (`bench_results/` at the
/// workspace root), created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    std::fs::create_dir_all(&dir).expect("bench_results directory must be creatable");
    dir
}

/// Serializes `value` as pretty JSON to `bench_results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("result types serialize");
    std::fs::write(&path, json).expect("result file must be writable");
    mega_obs::info!("\n[saved {}]", path.display());
}

/// Generates all four benchmark datasets at a CPU-friendly scale.
pub fn bench_datasets(spec: &DatasetSpec) -> Vec<Dataset> {
    vec![zinc(spec), aqsol(spec), csl(spec), cycles(spec)]
}

/// A simple fixed-width table printer for figure/table binaries.
#[derive(Debug, Default)]
pub struct TableWriter {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Starts a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        let mut t = TableWriter::default();
        t.row(header);
        t
    }

    /// Appends a row of cells.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.as_ref().to_string()).collect();
        if self.widths.len() < cells.len() {
            self.widths.resize(cells.len(), 0);
        }
        for (i, c) in cells.iter().enumerate() {
            self.widths[i] = self.widths[i].max(c.chars().count());
        }
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (ri, row) in self.rows.iter().enumerate() {
            for (i, c) in row.iter().enumerate() {
                let w = self.widths[i];
                let _ = write!(out, "{c:<w$}  ");
            }
            out.push('\n');
            if ri == 0 {
                let total: usize = self.widths.iter().map(|w| w + 2).sum();
                out.push_str(&"-".repeat(total));
                out.push('\n');
            }
        }
        out
    }

    /// Prints the rendered table to stdout as data lines (shown even under
    /// `MEGA_LOG=quiet` — tables are the binaries' primary output).
    pub fn print(&self) {
        mega_obs::data!("{}", self.render().trim_end_matches('\n'));
    }
}

/// Formats a float with `digits` decimals.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Simulated profile of one training epoch for a dataset/model/engine
/// combination (paper profiling setup: one representative batch, scaled by
/// the epoch's batch count).
pub fn profile_config(
    ds: &Dataset,
    kind: mega_gnn::ModelKind,
    engine: mega_gnn::EngineChoice,
    batch_size: usize,
    hidden: usize,
    layers: usize,
) -> mega_gpu_sim::EpochCost {
    use mega_core::{preprocess, MegaConfig};
    let samples = &ds.train[..ds.train.len().min(batch_size)];
    let schedules: Option<Vec<_>> = match engine {
        mega_gnn::EngineChoice::Mega => Some(
            samples
                .iter()
                .map(|s| preprocess(&s.graph, &MegaConfig::default()).expect("valid graph"))
                .collect(),
        ),
        mega_gnn::EngineChoice::Baseline => None,
    };
    let cfg = mega_gnn::GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(hidden)
        .with_layers(layers)
        .with_heads(if hidden.is_multiple_of(4) { 4 } else { 1 });
    let steps = ds.train.len().div_ceil(batch_size).max(1);
    mega_gnn::cost::epoch_cost(&cfg, engine, samples, schedules.as_deref(), steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_writer_aligns() {
        let mut t = TableWriter::new(&["name", "value"]);
        t.row(&["a", "1"]).row(&["longer-name", "2.5"]);
        let s = t.render();
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
    }

    #[test]
    fn datasets_generate_at_tiny_scale() {
        let all = bench_datasets(&DatasetSpec::tiny(1));
        assert_eq!(all.len(), 4);
        for ds in &all {
            assert!(ds.validate(), "{} invalid", ds.name);
        }
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }
}
