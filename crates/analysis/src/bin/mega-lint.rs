//! `mega-lint` — the workspace invariant linter.
//!
//! Usage: `cargo run -p mega-analysis --bin mega-lint -- --workspace`
//!
//! Scans every Rust source in the workspace against the rule catalog in
//! `mega_analysis::Rule`, prints findings as `file:line: [rule] message`,
//! and exits non-zero when anything fires — which is how CI turns the
//! project invariants into a merge gate.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mega-lint --workspace [--root <dir>]

Lints every Rust source in the workspace against the MEGA invariant rules
(bit-exactness, unsafe hygiene, obs routing, determinism). Exits 1 when
any finding survives suppression pragmas, 2 on usage errors.

  --workspace     lint the enclosing cargo workspace (required)
  --root <dir>    use <dir> as the workspace root instead of discovering
                  it from the current directory
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage_error("pass --workspace");
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match mega_analysis::find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("mega-lint: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    match mega_analysis::lint_workspace(&root) {
        Ok((files, findings)) if findings.is_empty() => {
            println!("mega-lint: clean — {files} files checked");
            ExitCode::SUCCESS
        }
        Ok((files, findings)) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!(
                "mega-lint: {} finding(s) in {files} files checked",
                findings.len()
            );
            ExitCode::from(1)
        }
        Err(err) => {
            eprintln!("mega-lint: failed to scan {}: {err}", root.display());
            ExitCode::from(2)
        }
    }
}

fn usage_error(why: &str) -> ExitCode {
    eprintln!("mega-lint: {why}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}
