// `stale-pragma` fixture: one pragma earns its keep, one is stale.
use std::collections::HashMap; // mega-lint: allow(unordered-collection, reason = "re-export for callers that key by id")

// mega-lint: allow(no-fma, reason = "there is no fma here any more")
pub fn plain(x: f32) -> f32 {
    x + 1.0
}
