//! `mega report` — deterministic markdown performance report from a
//! metrics snapshot.
//!
//! Reads a snapshot JSON written by `--metrics-out` (either mode of
//! [`mega_obs::Snapshot::to_json`]) and renders the observability story of
//! the run as markdown: a per-kernel roofline table from the
//! `exec.profiled.*` counters, buffer-pool residency and high-water marks,
//! traversal locality, training health, the simulated-GPU bridge, and the
//! span census. With `--baseline` it appends a diff against an earlier
//! snapshot or a `bench_results/backend_matmul.json` sweep.
//!
//! Determinism contract: rendering is a pure function of the input bytes
//! and the roofs in play. Deterministic snapshots carry counts-only
//! timings, so their reports place kernels on the roofline (arithmetic
//! intensity, bound, attainable rate at the fixed
//! [`Calibration::reference`] roofs) without wall-clock columns —
//! byte-identical across identical runs, which CI enforces. Full snapshots
//! add achieved GFLOP/s / GB/s and roof utilization from measured
//! nanoseconds. `--calibrate` swaps in machine roofs measured on the spot
//! (and `--calibration FILE` persists/loads them), trading determinism for
//! absolute utilization numbers.

use crate::args::Args;
use mega_exec::Calibration;
use mega_obs::{data, info};
use serde::Value;
use std::fmt::Write as _;

/// `mega report <snapshot.json>` — render the markdown report.
pub fn report(args: &Args) -> Result<(), String> {
    let snap_path = args.positional().first().ok_or(
        "report needs a metrics snapshot JSON (write one with `mega train --metrics-out`)",
    )?;
    let source =
        std::fs::read_to_string(snap_path).map_err(|e| format!("cannot read {snap_path}: {e}"))?;
    let (cal, roofs_label) = resolve_calibration(args)?;
    let baseline = match args.get("baseline") {
        Some(p) => Some((
            p.to_string(),
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?,
        )),
        None => None,
    };
    let md = render(
        snap_path,
        &source,
        baseline.as_ref().map(|(p, s)| (p.as_str(), s.as_str())),
        &cal,
        &roofs_label,
    )?;
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &md).map_err(|e| format!("cannot write {path}: {e}"))?;
            info!("[report written to {path}]");
        }
        None => data!("{md}"),
    }
    Ok(())
}

/// Picks the roofs: `--calibration FILE` loads saved machine roofs,
/// `--calibrate` measures them now (on `--calibrate-backend`, default
/// `simd`) and saves to `--calibration FILE` when both are given; the
/// default is the fixed reference pair, keeping the report deterministic.
fn resolve_calibration(args: &Args) -> Result<(Calibration, String), String> {
    if args.has_flag("calibrate") {
        let name = args.get("calibrate-backend").unwrap_or("simd");
        let backend = mega_exec::backend_by_name(name)
            .ok_or_else(|| format!("unknown --calibrate-backend `{name}`"))?;
        let cal = Calibration::measure(backend.as_ref());
        if let Some(path) = args.get("calibration") {
            let json = format!(
                "{{\n  \"gemm_gflops\": {},\n  \"triad_gbps\": {}\n}}\n",
                cal.gemm_gflops, cal.triad_gbps
            );
            std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            info!("[calibration written to {path}]");
        }
        let label = format!(
            "measured on `{name}` ({:.2} GFLOP/s GEMM, {:.2} GB/s triad) — not run-deterministic",
            cal.gemm_gflops, cal.triad_gbps
        );
        return Ok((cal, label));
    }
    if let Some(path) = args.get("calibration") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let v: Value =
            serde_json::from_str(&text).map_err(|e| format!("bad calibration {path}: {e:?}"))?;
        let cal = Calibration {
            gemm_gflops: get_f64(&v, "gemm_gflops")
                .ok_or_else(|| format!("{path}: missing `gemm_gflops`"))?,
            triad_gbps: get_f64(&v, "triad_gbps")
                .ok_or_else(|| format!("{path}: missing `triad_gbps`"))?,
        };
        let label = format!(
            "loaded from `{path}` ({:.2} GFLOP/s GEMM, {:.2} GB/s triad)",
            cal.gemm_gflops, cal.triad_gbps
        );
        return Ok((cal, label));
    }
    let cal = Calibration::reference();
    let label = format!(
        "reference ({:.1} GFLOP/s GEMM, {:.1} GB/s triad); pass --calibrate for machine roofs",
        cal.gemm_gflops, cal.triad_gbps
    );
    Ok((cal, label))
}

// ---------------------------------------------------------------- parsing

/// One histogram summary as serialized by `Snapshot::to_json`.
#[derive(Clone, Copy, Default)]
struct Hist {
    count: u64,
    sum: u64,
    p50: u64,
    p90: u64,
    p99: u64,
}

/// The parts of a snapshot the report consumes. `timings`/`spans` carry
/// `None` totals when the snapshot was written deterministically.
struct Snap {
    deterministic: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    values: Vec<(String, Hist)>,
    timings: Vec<(String, u64, Option<u64>)>,
    spans: Vec<(String, u64, Option<u64>)>,
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(u) => Some(*u),
        Value::I64(i) => u64::try_from(*i).ok(),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U64(u) => Some(*u as f64),
        Value::I64(i) => Some(*i as f64),
        Value::F64(f) => Some(*f),
        _ => None,
    }
}

fn get_u64(v: &Value, key: &str) -> Option<u64> {
    get(v, key).and_then(as_u64)
}

fn get_f64(v: &Value, key: &str) -> Option<f64> {
    get(v, key).and_then(as_f64)
}

fn entries<'a>(v: &'a Value, key: &str) -> Vec<(&'a str, &'a Value)> {
    match get(v, key) {
        Some(Value::Object(e)) => e.iter().map(|(k, v)| (k.as_str(), v)).collect(),
        _ => Vec::new(),
    }
}

fn parse_snapshot(source: &str) -> Result<Snap, String> {
    let v: Value = serde_json::from_str(source).map_err(|e| format!("bad snapshot: {e:?}"))?;
    if get(&v, "counters").is_none() {
        return Err("not a metrics snapshot (no `counters` object)".into());
    }
    let hist = |h: &Value| Hist {
        count: get_u64(h, "count").unwrap_or(0),
        sum: get_u64(h, "sum").unwrap_or(0),
        p50: get_u64(h, "p50").unwrap_or(0),
        p90: get_u64(h, "p90").unwrap_or(0),
        p99: get_u64(h, "p99").unwrap_or(0),
    };
    let mut snap = Snap {
        deterministic: matches!(get(&v, "deterministic"), Some(Value::Bool(true))),
        counters: entries(&v, "counters")
            .into_iter()
            .filter_map(|(k, c)| as_u64(c).map(|c| (k.to_string(), c)))
            .collect(),
        gauges: entries(&v, "gauges")
            .into_iter()
            .filter_map(|(k, g)| as_f64(g).map(|g| (k.to_string(), g)))
            .collect(),
        values: entries(&v, "values")
            .into_iter()
            .map(|(k, h)| (k.to_string(), hist(h)))
            .collect(),
        timings: entries(&v, "timings")
            .into_iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    get_u64(h, "count").unwrap_or(0),
                    get_u64(h, "sum_ns"),
                )
            })
            .collect(),
        spans: entries(&v, "spans")
            .into_iter()
            .map(|(k, s)| {
                (
                    k.to_string(),
                    get_u64(s, "count").unwrap_or(0),
                    get_u64(s, "total_ns"),
                )
            })
            .collect(),
    };
    // The registry serializes sorted already; re-sort so the report never
    // depends on input ordering.
    snap.counters.sort();
    snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    snap.values.sort_by(|a, b| a.0.cmp(&b.0));
    snap.timings.sort_by(|a, b| a.0.cmp(&b.0));
    snap.spans.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(snap)
}

impl Snap {
    fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    fn timing_sum_ns(&self, name: &str) -> Option<u64> {
        self.timings.iter().find(|(k, _, _)| k == name)?.2
    }
}

// -------------------------------------------------------------- rendering

/// Renders the full markdown report. Pure: identical inputs produce
/// identical bytes.
fn render(
    snap_path: &str,
    source: &str,
    baseline: Option<(&str, &str)>,
    cal: &Calibration,
    roofs_label: &str,
) -> Result<String, String> {
    let snap = parse_snapshot(source)?;
    let mut o = String::with_capacity(4096);
    let _ = writeln!(o, "# MEGA performance report");
    let _ = writeln!(o);
    let _ = writeln!(o, "- snapshot: `{snap_path}`");
    let _ = writeln!(
        o,
        "- mode: {}",
        if snap.deterministic {
            "deterministic (counts-only timings; rates below are roofline placements, not measurements)"
        } else {
            "full (wall-clock timings; achieved rates are measured)"
        }
    );
    let _ = writeln!(o, "- roofs: {roofs_label}");
    render_roofline(&mut o, &snap, cal);
    render_planner(&mut o, &snap);
    render_pool(&mut o, &snap);
    render_traversal(&mut o, &snap);
    render_health(&mut o, &snap);
    render_dist(&mut o, &snap);
    render_gpusim(&mut o, &snap);
    render_spans(&mut o, &snap);
    if let Some((path, text)) = baseline {
        render_baseline(&mut o, &snap, path, text, cal)?;
    }
    Ok(o)
}

/// Scaled engineering formatting: value / 10^k with three significant
/// decimals, deterministic for identical inputs.
fn eng(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Per-kernel roofline table from `exec.profiled.<kernel>.*`.
fn render_roofline(o: &mut String, snap: &Snap, cal: &Calibration) {
    let kernels: Vec<&str> = snap
        .counters
        .iter()
        .filter_map(|(k, _)| {
            k.strip_prefix("exec.profiled.")
                .and_then(|rest| rest.strip_suffix(".calls"))
        })
        .collect();
    if kernels.is_empty() {
        return;
    }
    let _ = writeln!(o, "\n## Kernel roofline (exec.profiled)");
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "| kernel | calls | GFLOP | GB | AI (flop/B) | bound | roof GF/s | achieved GF/s | achieved GB/s | roof util |"
    );
    let _ = writeln!(o, "|---|---|---|---|---|---|---|---|---|---|");
    let mut name = String::new();
    for kernel in kernels {
        let counter = |suffix: &str, name: &mut String| {
            name.clear();
            name.push_str("exec.profiled.");
            name.push_str(kernel);
            name.push_str(suffix);
            snap.counter(name).unwrap_or(0)
        };
        let calls = counter(".calls", &mut name);
        let flops = counter(".flops", &mut name) as f64;
        let bytes = counter(".bytes", &mut name) as f64;
        let ai = if bytes > 0.0 { flops / bytes } else { 0.0 };
        // The roofline: attainable flop rate is the lesser of the compute
        // peak and what the bandwidth can feed at this intensity.
        let roof_gflops = cal.gemm_gflops.min(ai * cal.triad_gbps);
        let bound = if ai * cal.triad_gbps < cal.gemm_gflops {
            "memory"
        } else {
            "compute"
        };
        name.clear();
        name.push_str("exec.profiled.");
        name.push_str(kernel);
        name.push_str(".ns");
        let measured = snap
            .timing_sum_ns(&name)
            .filter(|&ns| ns > 0)
            .map(|ns| (flops / ns as f64, bytes / ns as f64));
        let (ach_gf, ach_gb, util) = match measured {
            // flops/ns == GFLOP/s, bytes/ns == GB/s.
            Some((gf, gb)) => (
                eng(gf),
                eng(gb),
                if roof_gflops > 0.0 {
                    format!("{:.1}%", gf / roof_gflops * 100.0)
                } else {
                    "-".to_string()
                },
            ),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };
        let _ = writeln!(
            o,
            "| {kernel} | {calls} | {} | {} | {} | {bound} | {} | {ach_gf} | {ach_gb} | {util} |",
            eng(flops / 1e9),
            eng(bytes / 1e9),
            eng(ai),
            eng(roof_gflops),
        );
    }
}

/// Percentage of `part` in `total`, or `-` for an empty total.
fn pct(part: u64, total: u64) -> String {
    if total > 0 {
        format!("{:.1}%", part as f64 / total as f64 * 100.0)
    } else {
        "-".to_string()
    }
}

/// Tape-planner telemetry: fusion traffic (`tensor.plan.*`), the
/// cross-step pack cache (`exec.pack.*`), and chunk-plan reuse
/// (`core.parallel.plan_cache.*`).
fn render_planner(o: &mut String, snap: &Snap) {
    let deferred = snap.counter("tensor.plan.deferred");
    let pack: Vec<u64> = ["hits", "misses", "invalidations"]
        .map(|s| snap.counter(&format!("exec.pack.{s}")).unwrap_or(0))
        .to_vec();
    let chunk_hits = snap.counter("core.parallel.plan_cache.hits").unwrap_or(0);
    let chunk_misses = snap.counter("core.parallel.plan_cache.misses").unwrap_or(0);
    let has_pack = pack.iter().any(|&v| v > 0);
    let has_chunk = chunk_hits + chunk_misses > 0;
    if deferred.is_none() && !has_pack && !has_chunk {
        return;
    }
    let _ = writeln!(o, "\n## Planner");
    let _ = writeln!(o);
    if let Some(d) = deferred {
        let flushes = snap.counter("tensor.plan.flushes").unwrap_or(0);
        let fused = snap.counter("tensor.plan.fused").unwrap_or(0);
        let elided = snap.counter("tensor.plan.elided").unwrap_or(0);
        let _ = writeln!(
            o,
            "- deferred ops: {d} across {flushes} flushes; {fused} fusions elided {elided} \
             nodes (fusion hit rate {})",
            pct(elided, d)
        );
        let kinds: Vec<(&str, u64)> = snap
            .counters
            .iter()
            .filter_map(|(k, v)| k.strip_prefix("tensor.plan.fused.").map(|kind| (kind, *v)))
            .collect();
        if !kinds.is_empty() {
            let _ = writeln!(o);
            let _ = writeln!(o, "| fused kernel | rewrites |");
            let _ = writeln!(o, "|---|---|");
            for (kind, count) in kinds {
                let _ = writeln!(o, "| {kind} | {count} |");
            }
        }
    }
    if has_pack {
        let (h, m, inv) = (pack[0], pack[1], pack[2]);
        let _ = writeln!(
            o,
            "- pack cache: {h} hits / {m} misses (hit rate {}), {inv} invalidations",
            pct(h, h + m)
        );
    }
    if has_chunk {
        let _ = writeln!(
            o,
            "- chunk-plan cache: {chunk_hits} hits / {chunk_misses} misses (reuse rate {})",
            pct(chunk_hits, chunk_hits + chunk_misses)
        );
    }
}

/// Buffer-pool residency per size class plus the hit/miss totals.
fn render_pool(o: &mut String, snap: &Snap) {
    let mut classes: Vec<&str> = snap
        .gauges
        .iter()
        .filter_map(|(k, _)| {
            k.strip_prefix("exec.pool.class")
                .and_then(|rest| rest.strip_suffix(".resident_bytes"))
        })
        .collect();
    classes.sort_by_key(|c| c.parse::<u32>().unwrap_or(u32::MAX));
    let hits = snap.counter("exec.pool.hits");
    let misses = snap.counter("exec.pool.misses");
    if classes.is_empty() && hits.is_none() && misses.is_none() {
        return;
    }
    let _ = writeln!(o, "\n## Buffer pool");
    let _ = writeln!(o);
    if let (Some(h), Some(m)) = (hits.or(Some(0)), misses.or(Some(0))) {
        let total = h + m;
        let rate = if total > 0 {
            format!("{:.1}%", h as f64 / total as f64 * 100.0)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            o,
            "- acquires: {total} ({h} hits / {m} misses, hit rate {rate})"
        );
    }
    if !classes.is_empty() {
        let _ = writeln!(o);
        let _ = writeln!(
            o,
            "| class | buffer elems | resident bytes | high-water bytes | park cap |"
        );
        let _ = writeln!(o, "|---|---|---|---|---|");
        for class in classes {
            let gauge = |suffix: &str| {
                snap.gauges
                    .iter()
                    .find(|(k, _)| {
                        k.strip_prefix("exec.pool.class")
                            .and_then(|r| r.strip_suffix(suffix))
                            == Some(class)
                    })
                    .map_or(0.0, |(_, v)| *v)
            };
            let elems = class
                .parse::<u32>()
                .ok()
                .and_then(|c| 1u64.checked_shl(c))
                .map_or("-".to_string(), |e| format!("<= {e}"));
            let _ = writeln!(
                o,
                "| {class} | {elems} | {:.0} | {:.0} | {:.0} |",
                gauge(".resident_bytes"),
                gauge(".resident_hwm_bytes"),
                gauge(".cap"),
            );
        }
    }
}

/// Traversal locality: per-window revisits and node hotness histograms.
fn render_traversal(o: &mut String, snap: &Snap) {
    let rows: Vec<&(String, Hist)> = snap
        .values
        .iter()
        .filter(|(k, _)| k.starts_with("core.traversal."))
        .collect();
    let hot = snap.counter("core.traversal.hot_nodes");
    if rows.is_empty() && hot.is_none() {
        return;
    }
    let _ = writeln!(o, "\n## Traversal locality");
    let _ = writeln!(o);
    if let Some(h) = hot {
        let _ = writeln!(o, "- hot nodes (visited more than once): {h}");
        let _ = writeln!(o);
    }
    if !rows.is_empty() {
        let _ = writeln!(o, "| metric | samples | sum | p50 | p90 | p99 |");
        let _ = writeln!(o, "|---|---|---|---|---|---|");
        for (k, h) in rows {
            let _ = writeln!(
                o,
                "| {} | {} | {} | {} | {} | {} |",
                k.trim_start_matches("core.traversal."),
                h.count,
                h.sum,
                h.p50,
                h.p90,
                h.p99
            );
        }
    }
}

/// Training health: loss and gradient-norm histograms (recorded in
/// thousandths; rendered back as floats).
fn render_health(o: &mut String, snap: &Snap) {
    let rows: Vec<&(String, Hist)> = snap
        .values
        .iter()
        .filter(|(k, _)| k.starts_with("gnn.health."))
        .collect();
    if rows.is_empty() {
        return;
    }
    let _ = writeln!(o, "\n## Training health");
    let _ = writeln!(o);
    let _ = writeln!(o, "| signal | steps | mean | p50 | p90 | p99 |");
    let _ = writeln!(o, "|---|---|---|---|---|---|");
    for (k, h) in rows {
        let milli = |v: u64| eng(v as f64 / 1e3);
        let mean = if h.count > 0 {
            eng(h.sum as f64 / h.count as f64 / 1e3)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            o,
            "| {} | {} | {mean} | {} | {} | {} |",
            k.trim_start_matches("gnn.health.")
                .trim_end_matches("_milli"),
            h.count,
            milli(h.p50),
            milli(h.p90),
            milli(h.p99)
        );
    }
}

/// Distributed execution: shard-parallel trainer accounting
/// (`dist.train.*`) and band-engine halo traffic (`dist.*`). Deterministic
/// snapshots carry the shard/halo counters (bit-stable across runs and
/// worker counts); wall-clock shard/step/wait times appear only in full
/// snapshots.
fn render_dist(o: &mut String, snap: &Snap) {
    let has_dist = snap.counters.iter().any(|(k, _)| k.starts_with("dist."));
    if !has_dist {
        return;
    }
    let _ = writeln!(o, "\n## Distributed");
    let _ = writeln!(o);
    if let Some(runs) = snap.counter("dist.train.runs") {
        let workers = snap.counter("dist.train.workers").unwrap_or(0);
        let steps = snap.counter("dist.train.steps").unwrap_or(0);
        let shards = snap.counter("dist.train.shards").unwrap_or(0);
        let per_step = if steps > 0 {
            format!("{:.1}", shards as f64 / steps as f64)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            o,
            "- trainer: {runs} runs x {workers} workers; {steps} optimizer steps over \
             {shards} gradient shards ({per_step} shards/step, fixed-order all-reduce)"
        );
        if let Some(ns) = snap.timing_sum_ns("dist.train.shard_ns") {
            let _ = writeln!(o, "- shard compute: {:.3} ms total", ns as f64 / 1e6);
        }
    }
    if let Some(runs) = snap.counter("dist.runs") {
        let workers = snap.counter("dist.workers").unwrap_or(0);
        let steps = snap.counter("dist.steps").unwrap_or(0);
        let msgs = snap.counter("dist.halo.msgs").unwrap_or(0);
        let bytes = snap.counter("dist.halo.bytes").unwrap_or(0);
        let per_msg = if msgs > 0 {
            format!("{:.0}", bytes as f64 / msgs as f64)
        } else {
            "-".to_string()
        };
        let _ = writeln!(
            o,
            "- band engine: {runs} runs x {workers} workers, {steps} steps; halo traffic \
             {msgs} messages / {bytes} bytes ({per_msg} B/msg)"
        );
        let step_ns = snap.timing_sum_ns("dist.step_ns");
        let wait_ns = snap.timing_sum_ns("dist.halo.wait_ns");
        if let (Some(s), Some(w)) = (step_ns, wait_ns) {
            let _ = writeln!(
                o,
                "- per-worker wall clock: {:.3} ms stepping, {:.3} ms waiting on halos ({})",
                s as f64 / 1e6,
                w as f64 / 1e6,
                pct(w, s)
            );
        }
    }
}

/// Simulated-GPU bridge (`mega profile` exports `gpusim.<engine>.*`).
fn render_gpusim(o: &mut String, snap: &Snap) {
    let counters: Vec<&(String, u64)> = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("gpusim."))
        .collect();
    if counters.is_empty() {
        return;
    }
    let _ = writeln!(o, "\n## Simulated GPU counters");
    let _ = writeln!(o);
    let _ = writeln!(o, "| counter | value |");
    let _ = writeln!(o, "|---|---|");
    for (k, v) in counters {
        let _ = writeln!(o, "| {k} | {v} |");
    }
    let gauges: Vec<&(String, f64)> = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("gpusim."))
        .collect();
    if !gauges.is_empty() {
        let _ = writeln!(o);
        let _ = writeln!(o, "| gauge | value |");
        let _ = writeln!(o, "|---|---|");
        for (k, v) in gauges {
            let _ = writeln!(o, "| {k} | {} |", eng(*v));
        }
    }
}

/// Span census: counts always, wall-clock totals when the snapshot has
/// them.
fn render_spans(o: &mut String, snap: &Snap) {
    if snap.spans.is_empty() {
        return;
    }
    let _ = writeln!(o, "\n## Spans");
    let _ = writeln!(o);
    let _ = writeln!(o, "| span | count | total ms |");
    let _ = writeln!(o, "|---|---|---|");
    for (path, count, total_ns) in &snap.spans {
        let ms = total_ns.map_or("-".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6));
        let _ = writeln!(o, "| {path} | {count} | {ms} |");
    }
}

/// `--baseline` diff. A snapshot baseline diffs counters and gauges; a
/// `backend_matmul.json` sweep is placed against the GEMM roof instead.
fn render_baseline(
    o: &mut String,
    snap: &Snap,
    path: &str,
    text: &str,
    cal: &Calibration,
) -> Result<(), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad baseline {path}: {e:?}"))?;
    if get(&v, "counters").is_some() {
        let base = parse_snapshot(text)?;
        let _ = writeln!(o, "\n## Diff vs baseline snapshot `{path}`");
        let _ = writeln!(o);
        let mut names: Vec<&str> = snap
            .counters
            .iter()
            .chain(base.counters.iter())
            .map(|(k, _)| k.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        let mut changed = 0usize;
        let mut rows = String::new();
        for name in names {
            let old = base.counter(name).unwrap_or(0);
            let new = snap.counter(name).unwrap_or(0);
            if old != new {
                changed += 1;
                let delta = new as i128 - old as i128;
                let _ = writeln!(rows, "| {name} | {old} | {new} | {delta:+} |");
            }
        }
        if changed == 0 {
            let _ = writeln!(o, "No counter differences.");
        } else {
            let _ = writeln!(o, "| counter | baseline | current | delta |");
            let _ = writeln!(o, "|---|---|---|---|");
            o.push_str(&rows);
        }
        return Ok(());
    }
    if let Some(Value::Array(rows)) = get(&v, "rows") {
        let _ = writeln!(o, "\n## Baseline GEMM sweep `{path}` vs roof");
        let _ = writeln!(o);
        let _ = writeln!(o, "| size | backend | ms | GFLOP/s | % of GEMM roof |");
        let _ = writeln!(o, "|---|---|---|---|---|");
        for row in rows {
            let size = get_u64(row, "size").unwrap_or(0);
            let backend = match get(row, "backend") {
                Some(Value::Str(s)) => s.as_str(),
                _ => "?",
            };
            let ms = get_f64(row, "ms").unwrap_or(0.0);
            let gflops = get_f64(row, "gflops").unwrap_or(0.0);
            let _ = writeln!(
                o,
                "| {size} | {backend} | {} | {} | {:.1}% |",
                eng(ms),
                eng(gflops),
                gflops / cal.gemm_gflops * 100.0
            );
        }
        return Ok(());
    }
    Err(format!(
        "baseline {path} is neither a metrics snapshot nor a backend_matmul sweep"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DET_SNAPSHOT: &str = r#"{
  "deterministic": true,
  "counters": {
    "core.parallel.plan_cache.hits": 5,
    "core.parallel.plan_cache.misses": 1,
    "core.traversal.hot_nodes": 3,
    "exec.pack.hits": 9,
    "exec.pack.invalidations": 3,
    "exec.pack.misses": 3,
    "exec.pool.hits": 6,
    "exec.pool.misses": 2,
    "exec.profiled.matmul.bytes": 3145728,
    "exec.profiled.matmul.calls": 4,
    "exec.profiled.matmul.flops": 536870912,
    "tensor.plan.deferred": 40,
    "tensor.plan.elided": 10,
    "tensor.plan.flushes": 6,
    "tensor.plan.fused": 6,
    "tensor.plan.fused.axpy": 1,
    "tensor.plan.fused.layer_norm_act": 1,
    "tensor.plan.fused.linear_relu": 4
  },
  "gauges": {
    "exec.pool.class6.cap": 3.0,
    "exec.pool.class6.resident_bytes": 768.0,
    "exec.pool.class6.resident_hwm_bytes": 768.0
  },
  "values": {
    "core.traversal.band_window_revisits": {"count": 4, "sum": 9, "p50": 2, "p90": 4, "p99": 4},
    "gnn.health.loss_milli": {"count": 8, "sum": 9600, "p50": 1100, "p90": 2000, "p99": 2100}
  },
  "timings": {
    "exec.profiled.matmul.ns": {"count": 4}
  },
  "spans": {
    "train": {"count": 1},
    "train/epoch": {"count": 2}
  }
}
"#;

    #[test]
    fn deterministic_snapshot_renders_identically_twice() {
        let cal = Calibration::reference();
        let a = render("m.json", DET_SNAPSHOT, None, &cal, "reference").unwrap();
        let b = render("m.json", DET_SNAPSHOT, None, &cal, "reference").unwrap();
        assert_eq!(a, b);
        // Roofline row: AI = 536870912/3145728 ≈ 170.7 flop/B, compute
        // bound at the reference roofs, no measured columns.
        assert!(a.contains("| matmul | 4 |"), "{a}");
        assert!(a.contains("compute"), "{a}");
        assert!(a.contains("| - | - | - |"), "{a}");
        // Pool, traversal, health, spans all present.
        assert!(a.contains("hit rate 75.0%"), "{a}");
        assert!(a.contains("| 6 | <= 64 | 768 | 768 | 3 |"), "{a}");
        assert!(a.contains("band_window_revisits"), "{a}");
        assert!(a.contains("| loss | 8 | 1.200 |"), "{a}");
        assert!(a.contains("| train/epoch | 2 | - |"), "{a}");
    }

    #[test]
    fn planner_section_summarizes_fusion_and_caches() {
        let cal = Calibration::reference();
        let md = render("m.json", DET_SNAPSHOT, None, &cal, "r").unwrap();
        assert!(md.contains("## Planner"), "{md}");
        assert!(
            md.contains(
                "- deferred ops: 40 across 6 flushes; 6 fusions elided 10 nodes \
                 (fusion hit rate 25.0%)"
            ),
            "{md}"
        );
        assert!(md.contains("| linear_relu | 4 |"), "{md}");
        assert!(md.contains("| axpy | 1 |"), "{md}");
        assert!(
            md.contains("- pack cache: 9 hits / 3 misses (hit rate 75.0%), 3 invalidations"),
            "{md}"
        );
        assert!(
            md.contains("- chunk-plan cache: 5 hits / 1 misses (reuse rate 83.3%)"),
            "{md}"
        );
        // A snapshot with no planner counters renders no Planner section.
        let bare = r#"{"counters": {"x": 1}}"#;
        let md = render("m.json", bare, None, &cal, "r").unwrap();
        assert!(!md.contains("## Planner"), "{md}");
    }

    #[test]
    fn full_snapshot_reports_achieved_rates_and_utilization() {
        // 0.536 GFLOP over 100 ms → 5.369 GF/s; roof at reference is the
        // 8.0 compute peak (AI ≈ 170.7), so util ≈ 67.1%.
        let full = DET_SNAPSHOT
            .replace("\"deterministic\": true", "\"deterministic\": false")
            .replace(
                "\"exec.profiled.matmul.ns\": {\"count\": 4}",
                "\"exec.profiled.matmul.ns\": {\"count\": 4, \"sum_ns\": 100000000, \"p50_ns\": 1, \"p90_ns\": 1, \"p99_ns\": 1}",
            );
        let cal = Calibration::reference();
        let md = render("m.json", &full, None, &cal, "reference").unwrap();
        assert!(md.contains("| 5.369 |"), "{md}");
        assert!(md.contains("67.1%"), "{md}");
    }

    #[test]
    fn distributed_section_summarizes_shards_and_halos() {
        let cal = Calibration::reference();
        // No dist counters → no Distributed section.
        let md = render("m.json", DET_SNAPSHOT, None, &cal, "r").unwrap();
        assert!(!md.contains("## Distributed"), "{md}");
        let dist = r#"{
  "deterministic": true,
  "counters": {
    "dist.halo.bytes": 3840,
    "dist.halo.msgs": 24,
    "dist.runs": 2,
    "dist.steps": 8,
    "dist.train.runs": 1,
    "dist.train.shards": 24,
    "dist.train.steps": 3,
    "dist.train.workers": 4,
    "dist.workers": 6
  },
  "timings": {
    "dist.train.shard_ns": {"count": 24}
  }
}"#;
        let md = render("m.json", dist, None, &cal, "r").unwrap();
        assert!(md.contains("## Distributed"), "{md}");
        assert!(
            md.contains(
                "- trainer: 1 runs x 4 workers; 3 optimizer steps over 24 gradient shards \
                 (8.0 shards/step, fixed-order all-reduce)"
            ),
            "{md}"
        );
        assert!(
            md.contains(
                "- band engine: 2 runs x 6 workers, 8 steps; halo traffic 24 messages / \
                 3840 bytes (160 B/msg)"
            ),
            "{md}"
        );
        // Counts-only snapshot: no wall-clock lines.
        assert!(!md.contains("shard compute"), "{md}");
        assert!(!md.contains("per-worker wall clock"), "{md}");
        // A full snapshot adds the measured lines.
        let full = dist.replace(
            r#""dist.train.shard_ns": {"count": 24}"#,
            r#""dist.train.shard_ns": {"count": 24, "sum_ns": 2000000},
    "dist.step_ns": {"count": 8, "sum_ns": 4000000},
    "dist.halo.wait_ns": {"count": 24, "sum_ns": 1000000}"#,
        );
        let md = render("m.json", &full, None, &cal, "r").unwrap();
        assert!(md.contains("- shard compute: 2.000 ms total"), "{md}");
        assert!(
            md.contains(
                "- per-worker wall clock: 4.000 ms stepping, 1.000 ms waiting on halos (25.0%)"
            ),
            "{md}"
        );
    }

    #[test]
    fn baseline_snapshot_diff_lists_changed_counters_only() {
        let base = DET_SNAPSHOT.replace(
            "\"exec.profiled.matmul.calls\": 4",
            "\"exec.profiled.matmul.calls\": 3",
        );
        let cal = Calibration::reference();
        let md = render("m.json", DET_SNAPSHOT, Some(("b.json", &base)), &cal, "r").unwrap();
        assert!(
            md.contains("| exec.profiled.matmul.calls | 3 | 4 | +1 |"),
            "{md}"
        );
        assert!(!md.contains("| exec.pool.hits |"), "{md}");
    }

    #[test]
    fn baseline_matmul_sweep_places_rows_on_the_roof() {
        let sweep = r#"{"threads": 1, "reps": 7, "rows": [
            {"size": 64, "backend": "simd", "ms": 0.017, "gflops": 4.0}
        ]}"#;
        let cal = Calibration::reference();
        let md = render(
            "m.json",
            DET_SNAPSHOT,
            Some(("bench.json", sweep)),
            &cal,
            "r",
        )
        .unwrap();
        assert!(md.contains("| 64 | simd | 0.017 | 4.000 | 50.0% |"), "{md}");
    }

    #[test]
    fn rejects_non_snapshot_input() {
        let cal = Calibration::reference();
        assert!(render("m.json", "[1, 2]", None, &cal, "r").is_err());
        assert!(render("m.json", "{\"rows\": []}", None, &cal, "r").is_err());
    }
}
