//! Ablation: candidate-selection policy (Eq. 2).
//!
//! The paper's traversal picks the candidate maximizing correlation with the
//! last ω path entries. This ablation compares that objective against
//! first-candidate and random selection: the correlate objective packs more
//! edges into the band early, yielding shorter paths and fewer virtual edges.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{traverse, CandidatePolicy, MegaConfig, WindowPolicy};
use mega_graph::{generate, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    graph: String,
    policy: String,
    path_len: usize,
    revisits: usize,
    virtual_edges: usize,
    expansion: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(5);
    let graphs: Vec<(String, Graph)> = vec![
        (
            "BA(400,3)".into(),
            generate::barabasi_albert(400, 3, &mut rng).unwrap(),
        ),
        (
            "ER(300,0.05)".into(),
            generate::erdos_renyi(300, 0.05, &mut rng).unwrap(),
        ),
        (
            "CSL(41,5)".into(),
            generate::circular_skip_links(41, 5).unwrap(),
        ),
        ("complete(40)".into(), generate::complete(40).unwrap()),
    ];
    let mut table = TableWriter::new(&[
        "graph",
        "policy",
        "path len",
        "revisits",
        "virtual",
        "expansion",
    ]);
    let mut rows = Vec::new();
    for (name, g) in &graphs {
        for policy in [
            CandidatePolicy::CorrelateArgmax,
            CandidatePolicy::FirstCandidate,
            CandidatePolicy::Random,
        ] {
            let cfg = MegaConfig::default()
                .with_window(WindowPolicy::Fixed(2))
                .with_policy(policy);
            let t = traverse(g, &cfg).unwrap();
            let label = format!("{policy:?}");
            table.row(&[
                name.clone(),
                label.clone(),
                t.path.len().to_string(),
                t.revisits.to_string(),
                t.virtual_edge_count.to_string(),
                fmt(t.expansion_factor(), 2),
            ]);
            rows.push(Row {
                graph: name.clone(),
                policy: label,
                path_len: t.path.len(),
                revisits: t.revisits,
                virtual_edges: t.virtual_edge_count,
                expansion: t.expansion_factor(),
            });
        }
    }
    mega_obs::data!("Ablation — candidate-selection policy (window 2, full coverage)\n");
    table.print();
    mega_obs::data!(
        "\nExpected: CorrelateArgmax (the paper's Eq. 2) produces the shortest paths and\n\
         fewest virtual edges on clustered graphs; random selection wastes coverage."
    );
    save_json("ablation_policy", &rows);
}
