//! Criterion benches of the parallel band-execution engine: serial banded
//! aggregation versus the chunked engine at 1/2/4/8 worker threads on a
//! 10k-node synthetic graph. The chunked results are bit-identical to
//! serial at every setting — this bench measures only the scheduling cost
//! and (on multi-core hosts) the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mega_core::parallel::Parallelism;
use mega_core::{preprocess, MegaConfig};
use mega_exec::kernels::{banded_aggregate, banded_aggregate_serial};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 10_000;
const FEAT: usize = 64;

fn bench_banded_aggregate(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = generate::barabasi_albert(NODES, 4, &mut rng).unwrap();
    let schedule = preprocess(&g, &MegaConfig::default()).unwrap();
    let band = schedule.band();
    let len = band.len();
    let x: Vec<f32> = (0..len * FEAT)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let weights: Vec<f32> = (0..schedule.working_graph().edge_count())
        .map(|_| rng.gen_range(0.0f32..1.0))
        .collect();

    let mut group = c.benchmark_group("banded_aggregate");
    group.bench_function(BenchmarkId::new("serial", format!("ba-{NODES}")), |b| {
        b.iter(|| banded_aggregate_serial(band, &x, FEAT, &weights))
    });
    for threads in [1usize, 2, 4, 8] {
        let par = Parallelism::with_threads(threads);
        group.bench_function(BenchmarkId::new("chunked", format!("{threads}t")), |b| {
            b.iter(|| banded_aggregate(band, &x, FEAT, &weights, &par))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_banded_aggregate);
criterion_main!(benches);
