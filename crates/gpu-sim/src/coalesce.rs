//! Warp-level memory coalescing.
//!
//! A warp issues one memory instruction for its 32 lanes; the coalescer
//! merges the lanes' byte addresses into distinct 32-byte sectors, each of
//! which becomes one global-memory transaction. Sequential `f32` access packs
//! 32 lanes into 4 sectors; a stride ≥ 32 bytes degenerates to one
//! transaction per lane — the paper's un-coalesced access problem.

/// Collects the distinct sector ids touched by one warp's lane addresses.
///
/// Returns sector ids (byte address / `sector_bytes`), deduplicated, in
/// first-touch order.
///
/// # Panics
///
/// Panics if `sector_bytes == 0`.
///
/// # Example
///
/// ```
/// use mega_gpu_sim::coalesce::warp_sectors;
///
/// // 32 sequential f32 loads: 128 bytes = 4 sectors.
/// let addrs: Vec<u64> = (0..32).map(|l| l * 4).collect();
/// assert_eq!(warp_sectors(&addrs, 32).len(), 4);
///
/// // 32 loads strided by 128 bytes: fully scattered, 32 transactions.
/// let addrs: Vec<u64> = (0..32).map(|l| l * 128).collect();
/// assert_eq!(warp_sectors(&addrs, 32).len(), 32);
/// ```
pub fn warp_sectors(lane_addrs: &[u64], sector_bytes: u64) -> Vec<u64> {
    assert!(sector_bytes > 0, "sector size must be positive");
    let mut sectors = Vec::with_capacity(lane_addrs.len().min(32));
    for &a in lane_addrs {
        let s = a / sector_bytes;
        if !sectors.contains(&s) {
            sectors.push(s);
        }
    }
    sectors
}

/// Splits a flat element-address stream into warps of `warp_size` lanes and
/// returns the per-warp sector lists. The trailing partial warp (if any) is
/// coalesced like a full one.
pub fn coalesce_stream(
    element_addrs: &[u64],
    warp_size: usize,
    sector_bytes: u64,
) -> Vec<Vec<u64>> {
    element_addrs
        .chunks(warp_size.max(1))
        .map(|w| warp_sectors(w, sector_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_f32_packs_into_four_sectors() {
        let addrs: Vec<u64> = (0..32u64).map(|l| 1000 + l * 4).collect();
        // Unaligned base may straddle one extra sector.
        let n = warp_sectors(&addrs, 32).len();
        assert!(n == 4 || n == 5, "got {n}");
    }

    #[test]
    fn broadcast_is_one_transaction() {
        let addrs = vec![64u64; 32];
        assert_eq!(warp_sectors(&addrs, 32).len(), 1);
    }

    #[test]
    fn scattered_is_one_per_lane() {
        let addrs: Vec<u64> = (0..32u64).map(|l| l * 4096).collect();
        assert_eq!(warp_sectors(&addrs, 32).len(), 32);
    }

    #[test]
    fn stream_chunks_into_warps() {
        let addrs: Vec<u64> = (0..64u64).map(|l| l * 4).collect();
        let warps = coalesce_stream(&addrs, 32, 32);
        assert_eq!(warps.len(), 2);
        assert_eq!(warps[0].len(), 4);
        assert_eq!(warps[1].len(), 4);
    }

    #[test]
    fn partial_warp_handled() {
        let addrs: Vec<u64> = (0..40u64).map(|l| l * 4).collect();
        let warps = coalesce_stream(&addrs, 32, 32);
        assert_eq!(warps.len(), 2);
        assert_eq!(warps[1].len(), 1); // 8 elements × 4B = 32B = 1 sector
    }
}
