//! Comment- and string-aware source scanning.
//!
//! [`strip`] folds a Rust source file into per-line [`Line`] records where
//! string-literal *contents* are dropped and comment text is separated from
//! code text. Every lint rule then matches against the right channel: bans
//! on identifiers look at `code` only (so a forbidden name inside a doc
//! comment or a log message never fires), while `SAFETY:` markers and
//! suppression pragmas are read from `comment` only (so a pragma quoted
//! inside a string literal is inert).
//!
//! The scanner is a small state machine, not a parser: it tracks nested
//! block comments, regular/byte strings (with escapes, possibly spanning
//! lines), raw strings with their `#` fences, and disambiguates char
//! literals from lifetimes. That is exactly enough to make token-level
//! matching trustworthy without pulling in a full Rust grammar.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Line {
    /// Code text with comments removed and string-literal contents dropped
    /// (the delimiting quotes remain, keeping token boundaries intact).
    pub code: String,
    /// Concatenated text of every comment on the line — line comments, doc
    /// comments, and block-comment content — without the delimiters.
    pub comment: String,
    /// True when a doc comment (`///`, `//!`, `/** */`, `/*! */`)
    /// contributed to `comment`. Doc prose *describes* markers like
    /// suppression pragmas without issuing them, so pragma collection
    /// skips doc text.
    pub doc: bool,
}

impl Line {
    /// True when the line carries no code tokens (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

enum State {
    Code,
    /// Inside block comments, nested to the given depth; the flag records
    /// whether the outermost block opened as a doc comment.
    Block(u32, bool),
    /// Inside a regular (escape-processing) string or byte-string literal.
    Str,
    /// Inside a raw string literal closed by `"` followed by this many `#`.
    Raw(u32),
}

/// Splits `source` into per-line code/comment channels.
pub fn strip(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw in source.lines() {
        let chars: Vec<char> = raw.chars().collect();
        let mut line = Line::default();
        let mut i = 0;
        while i < chars.len() {
            match state {
                State::Block(depth, is_doc) => {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1, is_doc);
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1, is_doc)
                        };
                        i += 2;
                    } else {
                        line.comment.push(chars[i]);
                        line.doc |= is_doc;
                        i += 1;
                    }
                }
                State::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else if chars[i] == '"' {
                        line.code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::Raw(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                        line.code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                State::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment; skip the `//`/`///`/`//!` sigil so the
                        // comment channel holds prose only.
                        let mut j = i + 2;
                        while j < chars.len() && (chars[j] == '/' || chars[j] == '!') {
                            j += 1;
                        }
                        line.doc |= j > i + 2;
                        line.comment.extend(&chars[j..]);
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        let is_doc = matches!(chars.get(i + 2), Some(&'!'))
                            || (matches!(chars.get(i + 2), Some(&'*'))
                                && chars.get(i + 3) != Some(&'/'));
                        line.doc |= is_doc;
                        state = State::Block(1, is_doc);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b') && !ends_in_ident(&line.code) {
                        if let Some((hashes, consumed, is_raw)) = string_prefix(&chars, i) {
                            line.code.push('"');
                            state = if is_raw {
                                State::Raw(hashes)
                            } else {
                                State::Str
                            };
                            i += consumed;
                        } else {
                            line.code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip past the closing quote.
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            // Plain char literal like 'x'.
                            i += 3;
                        } else {
                            // Lifetime: keep the tick as a token boundary.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Recognizes a `b"`, `r"`, `r#"`, `br"`, or `br#"` string opener at `i`.
/// Returns `(fence_hashes, chars_consumed, is_raw)`.
fn string_prefix(chars: &[char], i: usize) -> Option<(u32, usize, bool)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    let mut raw = false;
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    let mut hashes = 0u32;
    while raw && chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') && (raw || j > i) {
        Some((hashes, j + 1 - i, raw))
    } else {
        None
    }
}

/// True when the `"` at `i` is followed by the raw string's `#` fence.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn ends_in_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Iterates the identifier-shaped tokens in a code channel.
pub fn identifiers(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|t| !t.is_empty() && !t.starts_with(|c: char| c.is_ascii_digit()))
}

/// Substring search with identifier boundaries on both ends, so `print!`
/// does not match inside `eprint!` and `Instant::now` does not match
/// `Instant::nowhere`.
pub fn contains_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        let abs = from + pos;
        let before_ok = !code[..abs]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after_ok = !code[abs + pat.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        from = abs + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        strip(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_are_dropped_from_code() {
        let lines = strip("let x = \"mul_add inside a string\";");
        assert_eq!(lines[0].code, "let x = \"\";");
        assert!(lines[0].comment.is_empty());
    }

    #[test]
    fn doc_comments_are_flagged() {
        let lines = strip(
            "//! inner doc\n/// outer doc\n// plain\ncode();\n/*! block doc\nstill doc */\n/* plain block */",
        );
        assert!(lines[0].doc && lines[1].doc);
        assert!(!lines[2].doc && !lines[3].doc);
        assert!(lines[4].doc && lines[5].doc);
        assert!(!lines[6].doc);
    }

    #[test]
    fn comments_are_split_out() {
        let lines = strip("foo(); // trailing mul_add note");
        assert_eq!(lines[0].code, "foo(); ");
        assert_eq!(lines[0].comment, " trailing mul_add note");
    }

    #[test]
    fn doc_comment_sigils_are_stripped() {
        let lines = strip("/// SAFETY: docs\n//! inner");
        assert_eq!(lines[0].comment, " SAFETY: docs");
        assert_eq!(lines[1].comment, " inner");
        assert!(lines[0].is_comment_only());
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let src = "a(); /* one /* two */ still */ b();\nc(); /* open\nclose */ d();";
        let c = codes(src);
        assert_eq!(c[0], "a();  b();");
        assert_eq!(c[1], "c(); ");
        assert_eq!(c[2], " d();");
    }

    #[test]
    fn raw_strings_respect_hash_fences() {
        let lines = strip("let p = r#\"quote \" inside mul_add\"# + r\"x\";");
        assert_eq!(lines[0].code, "let p = \"\" + \"\";");
    }

    #[test]
    fn byte_strings_and_char_literals() {
        let lines = strip("let b = b\"mul_add\"; let c = 'x'; let e = '\\n';");
        assert_eq!(lines[0].code, "let b = \"\"; let c = ; let e = ;");
    }

    #[test]
    fn lifetimes_survive_char_heuristic() {
        let lines = strip("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert!(lines[0].code.contains("'a"));
        assert!(lines[0].code.contains("'static"));
    }

    #[test]
    fn multiline_strings_stay_stripped() {
        let src = "let s = \"first mul_add\nsecond mul_add\"; tail();";
        let c = codes(src);
        assert_eq!(c[0], "let s = \"");
        assert_eq!(c[1], "\"; tail();");
    }

    #[test]
    fn identifier_extraction_has_word_boundaries() {
        let ids: Vec<&str> = identifiers("a.mul_add(b, c) + unsafe_code").collect();
        assert_eq!(ids, ["a", "mul_add", "b", "c", "unsafe_code"]);
    }

    #[test]
    fn token_search_rejects_partial_matches() {
        assert!(contains_token("print!(\"\")", "print!"));
        assert!(!contains_token("eprint!(\"\")", "print!"));
        assert!(contains_token("let t = Instant::now();", "Instant::now"));
        assert!(!contains_token("Instant::nowhere()", "Instant::now"));
    }
}
