//! Logical-path resolution for `#[path = "..."]` modules and `include!`.
//!
//! Every rule in this crate scopes by workspace-relative path, but `#[path]`
//! attributes and `include!` macros let source text live somewhere other
//! than where it compiles: a `#[path = "gen/tables.rs"] mod tables;` in
//! `crates/exec/src/lib.rs` behaves like `crates/exec/src/tables.rs`, and an
//! `include!("simd_part.rs")` inside `crates/exec/src/simd.rs` is pasted
//! verbatim into that file. This module builds the map from a file's
//! physical path to its logical scope path so rules fire (or don't) as if
//! the file sat where the module tree puts it. Findings still report the
//! physical path — that is where the fix goes.
//!
//! Resolution rules, matching rustc's for the forms we parse:
//!
//! * `include!("p.rs")` — the text is pasted into the includer, so the
//!   included file inherits the includer's scope path wholesale.
//! * `#[path = "p.rs"] mod name;` — the file compiles as module `name`
//!   next to the includer, so its scope is `dir(includer_scope)/name.rs`.
//! * Both are transitive (an included file's own includes resolve against
//!   its logical scope), with a visited-set cycle guard that falls back to
//!   the physical path.
//!
//! Directives are read from the **raw** source, not [`crate::scan::strip`]
//! output, because the target path is itself a string literal and stripping
//! would erase it. `include_str!`/`include_bytes!` embed data, not code,
//! and are deliberately ignored, as are `#[path]` attributes inside inline
//! `mod { ... }` blocks (rustc anchors those differently; the workspace
//! does not use them).

use std::collections::{BTreeMap, BTreeSet};

/// How a file is pulled into the module tree.
enum Edge {
    /// `include!("...")`: verbatim paste, scope inherited unchanged.
    Include,
    /// `#[path = "..."] mod <name>;`: compiles as `<name>.rs` beside the
    /// includer's scope path.
    PathMod(String),
}

/// Maps each physically-located file that is pulled in via `#[path]` or
/// `include!` to the workspace-relative path its code logically compiles
/// at. Files whose logical and physical paths agree are omitted.
pub fn logical_paths(sources: &[(String, String)]) -> BTreeMap<String, String> {
    let mut edges: BTreeMap<String, (String, Edge)> = BTreeMap::new();
    for (rel, source) in sources {
        for (target, edge) in directives(rel, source) {
            // First includer wins; `sources` is sorted so ties are
            // deterministic.
            edges.entry(target).or_insert((rel.clone(), edge));
        }
    }
    let mut out = BTreeMap::new();
    for target in edges.keys() {
        let mut seen = BTreeSet::new();
        let scope = resolve_scope(target, &edges, &mut seen);
        if scope != *target {
            out.insert(target.clone(), scope);
        }
    }
    out
}

/// Follows include edges up to a file that is not itself included,
/// rewriting the path per [`Edge`] at each hop. `seen` guards cycles:
/// revisiting a file aborts the chain at its physical path.
fn resolve_scope(
    file: &str,
    edges: &BTreeMap<String, (String, Edge)>,
    seen: &mut BTreeSet<String>,
) -> String {
    if !seen.insert(file.to_string()) {
        return file.to_string();
    }
    match edges.get(file) {
        None => file.to_string(),
        Some((includer, Edge::Include)) => resolve_scope(includer, edges, seen),
        Some((includer, Edge::PathMod(name))) => {
            let parent_scope = resolve_scope(includer, edges, seen);
            match parent_scope.rsplit_once('/') {
                Some((dir, _)) => format!("{dir}/{name}.rs"),
                None => format!("{name}.rs"),
            }
        }
    }
}

/// Extracts every include directive from one file's raw source as
/// `(resolved workspace-relative target, edge kind)` pairs.
fn directives(rel: &str, source: &str) -> Vec<(String, Edge)> {
    let mut out = Vec::new();
    // A `#[path = "..."]` whose `mod name;` has not been seen yet; survives
    // intervening attributes, comments, and blank lines.
    let mut pending_path: Option<String> = None;
    for raw in source.lines() {
        let line = raw.trim();
        if line.starts_with("//") {
            continue;
        }
        if let Some(target) = include_target(line) {
            out.push((resolve_relative(rel, &target), Edge::Include));
        }
        if let Some((lit, rest)) = path_attribute(line) {
            pending_path = Some(lit);
            if let Some(name) = mod_name(rest) {
                let lit = pending_path.take().unwrap();
                out.push((resolve_relative(rel, &lit), Edge::PathMod(name)));
            }
            continue;
        }
        if pending_path.is_some() {
            if let Some(name) = mod_name(line) {
                let lit = pending_path.take().unwrap();
                out.push((resolve_relative(rel, &lit), Edge::PathMod(name)));
            } else if !(line.is_empty() || line.starts_with("#[")) {
                // Something other than the mod item follows the attribute;
                // drop it rather than mis-attach.
                pending_path = None;
            }
        }
    }
    out
}

/// Returns the string-literal argument of an `include!` call on this line,
/// rejecting `include_str!`/`include_bytes!` and non-literal arguments
/// (`concat!`, paths built at macro time).
fn include_target(line: &str) -> Option<String> {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("include!") {
        let abs = from + pos;
        let word_start = abs == 0 || {
            let c = bytes[abs - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if word_start {
            return string_literal(
                line[abs + "include!".len()..]
                    .trim_start()
                    .strip_prefix('(')?,
            );
        }
        from = abs + "include!".len();
    }
    None
}

/// Parses a `#[path = "lit"]` attribute, returning the literal and the
/// remainder of the line after the closing `]` (which may hold the
/// `mod name;` itself).
fn path_attribute(line: &str) -> Option<(String, &str)> {
    let rest = line.strip_prefix("#[")?.trim_start().strip_prefix("path")?;
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let lit = string_literal(rest)?;
    let after = &rest[rest.find('"').unwrap_or(0) + lit.len() + 2..];
    Some((lit, after.trim_start().strip_prefix(']').unwrap_or(after)))
}

/// Extracts the identifier from a non-inline `mod` item, tolerating
/// visibility qualifiers: `pub(crate) mod foo;` → `foo`. Inline bodies
/// (`mod foo { ... }`) are rejected — their `#[path]` semantics differ.
fn mod_name(line: &str) -> Option<String> {
    let mut rest = line.trim_start();
    if let Some(after_pub) = rest.strip_prefix("pub") {
        rest = after_pub.trim_start();
        if let Some(after_paren) = rest.strip_prefix('(') {
            rest = after_paren.split_once(')')?.1.trim_start();
        }
    }
    let rest = rest.strip_prefix("mod")?;
    let rest = rest.strip_prefix(|c: char| c.is_whitespace())?.trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    let after = rest[name.len()..].trim_start();
    (!name.is_empty() && after.starts_with(';')).then_some(name)
}

/// Reads a plain `"..."` literal from the start of `rest` (no raw strings,
/// no escapes — module paths in practice are plain ASCII literals).
fn string_literal(rest: &str) -> Option<String> {
    let body = rest.trim_start().strip_prefix('"')?;
    let end = body.find('"')?;
    Some(body[..end].to_string())
}

/// Joins `lit` onto the directory of `includer_rel`, collapsing `.` and
/// `..` components textually (workspace-relative paths never escape the
/// root in practice; a stray leading `..` is dropped).
fn resolve_relative(includer_rel: &str, lit: &str) -> String {
    let mut parts: Vec<&str> = includer_rel.split('/').collect();
    parts.pop();
    for comp in lit.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            c => parts.push(c),
        }
    }
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(sources: &[(&str, &str)]) -> BTreeMap<String, String> {
        let owned: Vec<(String, String)> = sources
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect();
        logical_paths(&owned)
    }

    #[test]
    fn include_inherits_the_includer_scope() {
        let m = map(&[(
            "crates/exec/src/simd.rs",
            "include!(\"gen/simd_part.rs\");\n",
        )]);
        assert_eq!(
            m.get("crates/exec/src/gen/simd_part.rs").unwrap(),
            "crates/exec/src/simd.rs"
        );
    }

    #[test]
    fn path_mod_compiles_beside_the_includer() {
        let m = map(&[(
            "crates/exec/src/lib.rs",
            "#[path = \"../generated/tables.rs\"]\npub mod tables;\n",
        )]);
        assert_eq!(
            m.get("crates/exec/generated/tables.rs").unwrap(),
            "crates/exec/src/tables.rs"
        );
    }

    #[test]
    fn same_line_path_mod_and_visibility_qualifiers_parse() {
        let m = map(&[(
            "crates/core/src/lib.rs",
            "#[path = \"impls/fast.rs\"] pub(crate) mod fast;\n",
        )]);
        assert_eq!(
            m.get("crates/core/src/impls/fast.rs").unwrap(),
            "crates/core/src/fast.rs"
        );
    }

    #[test]
    fn chains_resolve_transitively() {
        // lib.rs --#[path]--> parts/alpha.rs (as alpha.rs), which
        // include!s detail.rs: detail inherits alpha's logical scope.
        let m = map(&[
            (
                "crates/exec/src/lib.rs",
                "#[path = \"parts/alpha.rs\"]\nmod alpha;\n",
            ),
            (
                "crates/exec/src/parts/alpha.rs",
                "include!(\"detail.rs\");\n",
            ),
        ]);
        assert_eq!(
            m.get("crates/exec/src/parts/detail.rs").unwrap(),
            "crates/exec/src/alpha.rs"
        );
    }

    #[test]
    fn cycles_fall_back_to_physical_paths() {
        let m = map(&[
            ("a/one.rs", "include!(\"two.rs\");\n"),
            ("a/two.rs", "include!(\"one.rs\");\n"),
        ]);
        // Each resolves through the other and hits the cycle guard; the
        // resulting scope equals a physical path either way, so no entry
        // may claim a scope outside `a/`.
        for scope in m.values() {
            assert!(scope.starts_with("a/"), "scope escaped the cycle: {scope}");
        }
    }

    #[test]
    fn data_embeds_and_comments_are_ignored() {
        let m = map(&[(
            "crates/exec/src/lib.rs",
            "// include!(\"ghost.rs\");\nlet s = include_str!(\"data.txt\");\n\
             let b = include_bytes!(\"blob.bin\");\n",
        )]);
        assert!(m.is_empty(), "{m:?}");
    }

    #[test]
    fn attribute_not_followed_by_a_mod_item_is_dropped() {
        let m = map(&[(
            "crates/exec/src/lib.rs",
            "#[path = \"x.rs\"]\nfn not_a_mod() {}\nmod later;\n",
        )]);
        assert!(m.is_empty(), "{m:?}");
    }
}
