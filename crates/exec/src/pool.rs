//! Size-class freelist of `f32` buffers.
//!
//! Training builds and drops one autograd tape per batch; every tape node
//! used to allocate (and free) a fresh `Vec<f32>`. The pool intercepts that
//! churn: released buffers are binned by the largest power of two that fits
//! their capacity, and an acquire takes any buffer from the bin of the
//! *next* power of two of the requested length — so a recycled buffer always
//! has enough capacity, whatever exact shape it used to hold.
//!
//! Ownership rules (see DESIGN.md §6):
//!
//! * `acquire` transfers ownership of a **zeroed** buffer of exactly the
//!   requested length to the caller — pool reuse is never observable in the
//!   values a kernel computes.
//! * `release` transfers ownership back. Releasing a buffer the pool never
//!   issued is fine (that is how fresh allocations enter circulation);
//!   dropping an acquired buffer instead of releasing it is also fine, the
//!   pool just loses one reuse candidate.
//! * Each size class keeps at most [`BufferPool::MAX_PER_CLASS`] buffers;
//!   beyond that, released buffers are simply dropped, bounding the pool's
//!   resident memory.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A thread-safe size-class freelist of `Vec<f32>` buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: Mutex<BTreeMap<u32, Vec<Vec<f32>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Buffers retained per size class; further releases are dropped.
    pub const MAX_PER_CLASS: usize = 32;

    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// The class a request of `len` elements draws from: index of the next
    /// power of two, so any buffer stored there has capacity `>= len`.
    fn class_of_request(len: usize) -> u32 {
        len.max(1).next_power_of_two().trailing_zeros()
    }

    /// The class a buffer of `capacity` is stored under: index of the
    /// largest power of two that fits, so the buffer satisfies every request
    /// routed to that class.
    fn class_of_capacity(capacity: usize) -> u32 {
        (usize::BITS - 1).saturating_sub(capacity.leading_zeros())
    }

    /// Takes a zeroed buffer of exactly `len` elements, recycling a pooled
    /// allocation when one is available.
    pub fn acquire(&self, len: usize) -> Vec<f32> {
        let recycled = {
            let mut classes = self.classes.lock().expect("buffer pool poisoned");
            classes
                .get_mut(&Self::class_of_request(len))
                .and_then(Vec::pop)
        };
        match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if mega_obs::enabled() {
                    mega_obs::counter_add("exec.pool.hits", 1);
                }
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if mega_obs::enabled() {
                    mega_obs::counter_add("exec.pool.misses", 1);
                }
                vec![0.0f32; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse. Zero-capacity buffers and
    /// overflow beyond the per-class cap are dropped.
    pub fn release(&self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = Self::class_of_capacity(buf.capacity());
        let mut classes = self.classes.lock().expect("buffer pool poisoned");
        let bucket = classes.entry(class).or_default();
        if bucket.len() < Self::MAX_PER_CLASS {
            bucket.push(buf);
        }
    }

    /// Number of acquires served from the freelist.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of acquires that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the pool, across all classes.
    pub fn pooled(&self) -> usize {
        self.classes
            .lock()
            .expect("buffer pool poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_zeroed_exact_length() {
        let pool = BufferPool::new();
        let mut b = pool.acquire(10);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&v| v == 0.0));
        b.iter_mut().for_each(|v| *v = 7.0);
        pool.release(b);
        // The capacity-10 buffer parks in class 3 (floor: 8) and serves a
        // request of up to 8 elements, still zeroed.
        let again = pool.acquire(8);
        assert_eq!(again.len(), 8);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn release_bins_by_capacity_floor() {
        let pool = BufferPool::new();
        // A capacity-100 buffer lands in class 6 (64) and must not serve a
        // request of 128 (class 7).
        pool.release(Vec::with_capacity(100));
        let b = pool.acquire(128);
        assert_eq!(b.len(), 128);
        assert_eq!(pool.misses(), 1);
        // But it does serve a request of 64 or less.
        let c = pool.acquire(64);
        assert_eq!(c.len(), 64);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn per_class_cap_bounds_growth() {
        let pool = BufferPool::new();
        for _ in 0..(BufferPool::MAX_PER_CLASS + 5) {
            pool.release(vec![0.0; 8]);
        }
        assert_eq!(pool.pooled(), BufferPool::MAX_PER_CLASS);
    }

    #[test]
    fn zero_length_requests_work() {
        let pool = BufferPool::new();
        let b = pool.acquire(0);
        assert!(b.is_empty());
        pool.release(b);
    }
}
