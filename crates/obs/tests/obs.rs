//! Property-style tests of the histogram percentile guarantee against a
//! sorted-vec oracle: for every recorded distribution and quantile, the
//! reported percentile `p` and the exact rank value `e` satisfy
//! `e ≤ p ≤ 2·max(e, 1)`.
//!
//! No external dependency: a seeded xorshift generator supplies the random
//! distributions, so the test is deterministic.

use mega_obs::Histogram;

/// Deterministic xorshift64* stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn check_against_oracle(samples: &[u64]) {
    let mut h = Histogram::new();
    let mut sorted = samples.to_vec();
    for &v in samples {
        h.record(v);
    }
    sorted.sort_unstable();
    assert_eq!(h.count(), samples.len() as u64);
    for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.percentile(q);
        assert!(
            approx >= exact,
            "q={q}: approx {approx} below exact {exact} (n={})",
            sorted.len()
        );
        assert!(
            approx <= 2 * exact.max(1),
            "q={q}: approx {approx} above 2x exact {exact} (n={})",
            sorted.len()
        );
    }
}

#[test]
fn percentiles_match_sorted_oracle_uniform() {
    for seed in 1..=8u64 {
        let mut rng = XorShift(seed);
        let samples: Vec<u64> = (0..4096).map(|_| rng.next() % 1_000_000).collect();
        check_against_oracle(&samples);
    }
}

#[test]
fn percentiles_match_sorted_oracle_skewed() {
    // Heavy-tailed: mostly tiny values with rare large outliers — the
    // regime timing histograms actually see.
    for seed in 11..=14u64 {
        let mut rng = XorShift(seed);
        let samples: Vec<u64> = (0..4096)
            .map(|_| {
                let v = rng.next();
                if v.is_multiple_of(100) {
                    v % 1_000_000_000
                } else {
                    v % 64
                }
            })
            .collect();
        check_against_oracle(&samples);
    }
}

/// The deterministic sample stream thread `t` records (disjoint ranges per
/// thread so the union multiset is easy to reproduce serially).
fn thread_stream(t: u64) -> Vec<u64> {
    let mut rng = XorShift(t * 7919 + 1);
    (0..2048).map(|_| rng.next() % 1_000_000).collect()
}

#[test]
fn concurrent_private_histograms_merge_deterministically() {
    const THREADS: u64 = 8;
    // Each worker records its own stream into a private histogram; the
    // scheduler decides nothing, because recording is thread-local.
    let record_all = || -> Vec<Histogram> {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    s.spawn(move || {
                        let mut h = Histogram::new();
                        for v in thread_stream(t) {
                            h.record(v);
                        }
                        h
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    };
    let run_a = record_all();
    let run_b = record_all();
    // Ordered merge (thread index order) is identical run to run ...
    let merge_in_order = |parts: &[Histogram]| {
        let mut m = Histogram::new();
        for p in parts {
            m.merge(p);
        }
        m
    };
    let merged_a = merge_in_order(&run_a);
    let merged_b = merge_in_order(&run_b);
    assert_eq!(merged_a, merged_b, "ordered merge must be deterministic");
    // ... and equals both the reverse-order merge (commutativity) and a
    // serial recording of the union stream.
    let mut reversed = Histogram::new();
    for p in run_a.iter().rev() {
        reversed.merge(p);
    }
    assert_eq!(merged_a, reversed);
    let mut unified = Histogram::new();
    for t in 0..THREADS {
        for v in thread_stream(t) {
            unified.record(v);
        }
    }
    assert_eq!(merged_a, unified);
}

#[test]
fn percentile_bounds_hold_under_registry_contention() {
    const THREADS: u64 = 8;
    // All workers hammer the same named histogram in the global registry
    // concurrently; the mutex serializes bucket increments, so counts must
    // be exact and the percentile guarantee must survive any interleaving.
    mega_obs::reset();
    mega_obs::set_enabled(true);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for v in thread_stream(t) {
                    mega_obs::record_value("contended.values", v);
                }
            });
        }
    });
    mega_obs::set_enabled(false);
    let snap = mega_obs::snapshot();
    let (_, summary) = snap
        .values
        .iter()
        .find(|(n, _)| n == "contended.values")
        .expect("contended histogram recorded")
        .clone();
    let mut union: Vec<u64> = (0..THREADS).flat_map(thread_stream).collect();
    union.sort_unstable();
    assert_eq!(
        summary.count,
        union.len() as u64,
        "lost samples under contention"
    );
    assert_eq!(summary.sum, union.iter().sum::<u64>());
    for (q, p) in [
        (0.50, summary.p50),
        (0.90, summary.p90),
        (0.99, summary.p99),
    ] {
        let rank = ((q * union.len() as f64).ceil() as usize).clamp(1, union.len());
        let exact = union[rank - 1];
        assert!(p >= exact, "q={q}: {p} below exact {exact}");
        assert!(p <= 2 * exact.max(1), "q={q}: {p} above 2x exact {exact}");
    }
    mega_obs::reset();
}

#[test]
fn percentiles_exact_on_powers_of_two_and_zero() {
    let mut h = Histogram::new();
    for _ in 0..10 {
        h.record(0);
    }
    assert_eq!(h.percentile(0.5), 0);
    let mut h = Histogram::new();
    for _ in 0..10 {
        h.record(64);
    }
    // 64 lands in bucket [64, 128); the upper bound is 127.
    assert!(h.percentile(0.5) >= 64 && h.percentile(0.5) < 128);
}
