//! Figure 5: kernel time shares vs batch size under the DGL baseline.
//!
//! Paper setup: hidden 64, batch sizes 128 and 256. Larger batches amortize
//! graph-kernel overhead and grow the `sgemm` share — except on CSL, whose
//! constant graph size keeps the shares flat.

use mega_bench::{bench_datasets, fmt, profile_config, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use mega_gnn::{EngineChoice, ModelKind};
use mega_gpu_sim::KernelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    batch: usize,
    sgemm_share: f64,
    graph_ops_share: f64,
    memcpy_share: f64,
    eltwise_share: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(5);
    let (hidden, layers) = (64usize, 2usize);
    let mut table = TableWriter::new(&[
        "dataset",
        "model",
        "batch",
        "sgemm%",
        "graph-ops%",
        "memcpy%",
        "eltwise%",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            for &batch in &[128usize, 256] {
                let cost = profile_config(&ds, kind, EngineChoice::Baseline, batch, hidden, layers);
                let r = &cost.report;
                let share = |k: KernelKind| r.kernel(k).map_or(0.0, |x| x.time_share);
                table.row(&[
                    ds.name.clone(),
                    kind.label().to_string(),
                    batch.to_string(),
                    fmt(r.sgemm_time_share() * 100.0, 1),
                    fmt(r.graph_op_time_share() * 100.0, 1),
                    fmt(share(KernelKind::Memcpy) * 100.0, 1),
                    fmt(share(KernelKind::Elementwise) * 100.0, 1),
                ]);
                rows.push(Row {
                    dataset: ds.name.clone(),
                    model: kind.label().to_string(),
                    batch,
                    sgemm_share: r.sgemm_time_share(),
                    graph_ops_share: r.graph_op_time_share(),
                    memcpy_share: share(KernelKind::Memcpy),
                    eltwise_share: share(KernelKind::Elementwise),
                });
            }
        }
    }
    mega_obs::data!("Figure 5 — kernel time shares vs batch size (hidden 64, DGL baseline)\n");
    table.print();
    mega_obs::data!("\nPaper claims: GT spends a larger share on graph ops than GCN; sgemm share grows with batch size.");
    save_json("fig05_time_share", &rows);
}
