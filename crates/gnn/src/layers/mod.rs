//! Graph attention layers.

pub mod gat;
pub mod gated_gcn;
pub mod transformer;

pub use gat::GatLayer;
pub use gated_gcn::GatedGcnLayer;
pub use transformer::GraphTransformerLayer;

use crate::batch::EngineIndices;
use crate::nn::Binder;
use mega_tensor::{ParamStore, Tape, Var};

/// One attention layer of either architecture.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Gated Graph ConvNet layer.
    Gcn(GatedGcnLayer),
    /// Graph Transformer layer.
    Gt(GraphTransformerLayer),
    /// Graph Attention Network layer (extension).
    Gat(GatLayer),
}

impl Layer {
    /// Applies the layer: `(node_states, edge_states) → (node_states,
    /// edge_states)`. Node states have one row per node; edge states one row
    /// per directed message.
    pub fn forward(
        &self,
        tape: &mut Tape,
        binder: &mut Binder,
        store: &ParamStore,
        indices: &EngineIndices,
        h: Var,
        e: Var,
    ) -> (Var, Var) {
        match self {
            Layer::Gcn(l) => l.forward(tape, binder, store, indices, h, e),
            Layer::Gt(l) => l.forward(tape, binder, store, indices, h, e),
            Layer::Gat(l) => l.forward(tape, binder, store, indices, h, e),
        }
    }
}
