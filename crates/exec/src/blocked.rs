//! Cache-blocked GEMM with fused bias-activation.
//!
//! Two wins over the reference loops:
//!
//! * **Register tiling** — the reference axpy inner loop loads *and stores*
//!   the output row once per `k` step (three memory ops per multiply-add).
//!   Here each `NR`-column tile of the output row is held in registers
//!   across the whole depth loop, so the output is touched twice per tile
//!   instead of twice per `k` step.
//! * **Strip packing + row blocking** — `b` is repacked into contiguous
//!   `k × NR` column strips (killing the power-of-two row stride that
//!   thrashes L1 sets), and each cache-resident strip is reused across `MC`
//!   output rows, cutting strip traffic from the next cache level by `MC`×.
//!
//! Bit-identity: tiling reorders *which* output element is touched when,
//! never the order of contributions *within* an output element — each
//! `out[i, j]` still folds its `k` products in ascending `k` order, with
//! the same `a == 0.0` zero-skip as the reference kernel. The property
//! tests in `tests/proptests.rs` pin this down across shapes and thread
//! counts.

use crate::kernels;
use crate::partition;
use crate::{Backend, PackedB};
use mega_core::parallel::Parallelism;

/// Output rows per tile: one tile of rows shares each cache-resident strip
/// of packed `b`. Shared with `SimdBackend`, which reuses the same packed
/// layout.
pub(crate) const MC: usize = 32;
/// Output columns held in registers at once (8 SSE / 4 AVX vectors).
pub(crate) const NR: usize = 32;

/// Packs `b` (`k × m`, row-major) into contiguous `k × NR` column strips,
/// zero-padded to `NR` wide — the layout both the blocked and the SIMD
/// micro-kernels stream through. The copy is O(k·m) against O(n·k·m)
/// multiply-adds that reuse it.
pub(crate) fn pack_strips(b: &[f32], k: usize, m: usize) -> Vec<f32> {
    let strips = m.div_ceil(NR);
    let mut packed = vec![0.0f32; strips * k * NR];
    for s in 0..strips {
        let jt = s * NR;
        let w = NR.min(m - jt);
        let slab = &mut packed[s * k * NR..(s + 1) * k * NR];
        for kk in 0..k {
            slab[kk * NR..kk * NR + w].copy_from_slice(&b[kk * m + jt..kk * m + jt + w]);
        }
    }
    packed
}

/// Accumulates a full column strip into `NR` output columns held in
/// registers. `strip` is the packed, contiguous `k × NR` slab for this
/// column tile; the `kk * NR` walk is sequential in memory, so it streams
/// through L1 without the power-of-two stride conflicts the row-major
/// layout of `b` would cause.
#[inline]
fn micro_tile(a_row: &[f32], strip: &[f32], acc: &mut [f32; NR]) {
    for (kk, &av) in a_row.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let b_row = &strip[kk * NR..kk * NR + NR];
        for u in 0..NR {
            acc[u] += av * b_row[u];
        }
    }
}

/// Computes output rows `[lo, hi)` of `a · b` into `out` (zeroed,
/// `(hi - lo) × m`), streaming the caller-packed `NR`-wide strips of `b`
/// (see [`pack_strips`]) across `MC`-row tiles. Taking the packed buffer
/// rather than `b` itself lets the threaded driver pack **once** and share
/// the read-only strips across all workers — the strips used to be
/// repacked per worker, multiplying the O(k·m) copy by the thread count.
/// When `bias_relu` is set, the fused epilogue `out = max(out + bias, 0)`
/// runs per row tile while the rows are still hot.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_rows(
    a: &[f32],
    packed: &[f32],
    k: usize,
    m: usize,
    lo: usize,
    hi: usize,
    bias_relu: Option<&[f32]>,
    out: &mut [f32],
) {
    let strips = m.div_ceil(NR);

    let mut ib = lo;
    while ib < hi {
        let i_end = (ib + MC).min(hi);
        for s in 0..strips {
            let jt = s * NR;
            let w = NR.min(m - jt);
            let strip = &packed[s * k * NR..(s + 1) * k * NR];
            for i in ib..i_end {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
                let mut acc = [0.0f32; NR];
                acc[..w].copy_from_slice(&out_row[jt..jt + w]);
                micro_tile(a_row, strip, &mut acc);
                out_row[jt..jt + w].copy_from_slice(&acc[..w]);
            }
        }
        if let Some(bias) = bias_relu {
            for i in ib..i_end {
                let out_row = &mut out[(i - lo) * m..(i - lo + 1) * m];
                for (o, &bv) in out_row.iter_mut().zip(bias) {
                    *o = (*o + bv).max(0.0);
                }
            }
        }
        ib = i_end;
    }
}

/// Blocked GEMM driver over an already-packed `b` (see [`pack_strips`]):
/// the same serial cutoff and `MC`-aligned row split as the packing entry
/// point, minus the O(k·m) pack. This is what the pack-cache fast path
/// calls — a cached strip buffer skips straight to the multiply-adds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_blocked_packed(
    a: &[f32],
    packed: &[f32],
    n: usize,
    k: usize,
    m: usize,
    par: &Parallelism,
    bias_relu: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(a.len(), n * k, "a must be {n}x{k}");
    assert_eq!(
        packed.len(),
        m.div_ceil(NR) * k * NR,
        "packed b must hold {k}x{m} in NR strips"
    );
    assert_eq!(out.len(), n * m, "out must be {n}x{m}");
    if let Some(bias) = bias_relu {
        assert_eq!(bias.len(), m, "bias must be 1x{m}");
    }
    let threads = par.effective_threads().min(n.max(1));
    if threads <= 1 || n * k * m < kernels::PAR_MATMUL_MIN_FLOPS {
        return gemm_blocked_rows(a, packed, k, m, 0, n, bias_relu, out);
    }
    // MC-aligned boundaries keep whole row tiles on one worker; each worker
    // streams the shared packed strips and writes its rows in place.
    let ranges = partition::row_ranges(n, threads, MC);
    partition::par_rows(out, n, m, &ranges, |lo, hi, rows| {
        gemm_blocked_rows(a, packed, k, m, lo, hi, bias_relu, rows);
    });
}

/// Full blocked GEMM with the same shape checks, serial cutoff, and
/// row-range parallel split as [`kernels::matmul_par`] — only the per-range
/// loop order differs. Packs `b` fresh; callers holding a cached pack go
/// through [`gemm_blocked_packed`] directly.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    par: &Parallelism,
    bias_relu: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(b.len(), k * m, "b must be {k}x{m}");
    let packed = pack_strips(b, k, m);
    gemm_blocked_packed(a, &packed, n, k, m, par, bias_relu, out);
}

/// Cache-tiled GEMM + fused bias-ReLU; everything else stays on the
/// reference loops.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockedBackend;

impl Backend for BlockedBackend {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_blocked(a, b, n, k, m, par, None, out);
    }

    fn linear_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_blocked(x, w, n, k, m, par, Some(bias), out);
    }

    fn supports_prepack(&self) -> bool {
        true
    }

    fn prepack(&self, b: &[f32], k: usize, m: usize) -> Option<PackedB> {
        assert_eq!(b.len(), k * m, "b must be {k}x{m}");
        Some(PackedB::new(pack_strips(b, k, m), k, m))
    }

    fn matmul_packed(
        &self,
        a: &[f32],
        packed: &PackedB,
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_blocked_packed(a, &packed.data, n, packed.k, packed.m, par, None, out);
    }

    fn linear_relu_packed(
        &self,
        x: &[f32],
        packed: &PackedB,
        bias: &[f32],
        n: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        gemm_blocked_packed(x, &packed.data, n, packed.k, packed.m, par, Some(bias), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic values with a sprinkling of exact zeros to exercise
        // the skip path.
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(9);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let v = ((state >> 8) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0;
                if v.abs() < 0.05 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn blocked_matmul_bit_identical_to_reference() {
        // Shapes straddling the tile sizes and the parallel cutoff.
        for &(n, k, m) in &[
            (1usize, 1usize, 1usize),
            (7, 13, 5),
            (33, 64, 17),
            (40, 70, 65),
            (64, 128, 32),
        ] {
            let a = sample(n * k, (n * 31 + k) as u32);
            let b = sample(k * m, (k * 17 + m) as u32);
            for threads in [1usize, 2, 4] {
                let par = Parallelism::pinned(threads);
                let mut reference = vec![0.0f32; n * m];
                kernels::matmul_par(&a, &b, n, k, m, &par, &mut reference);
                let mut blocked = vec![0.0f32; n * m];
                BlockedBackend.matmul(&a, &b, n, k, m, &par, &mut blocked);
                for (x, y) in blocked.iter().zip(&reference) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{n}x{k}x{m} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn packed_entry_points_bit_identical_to_fresh_pack() {
        let (n, k, m) = (33usize, 64usize, 40usize);
        let a = sample(n * k, 7);
        let b = sample(k * m, 8);
        let bias = sample(m, 9);
        let backend = BlockedBackend;
        let packed = backend.prepack(&b, k, m).expect("blocked backend packs");
        assert_eq!((packed.k(), packed.m()), (k, m));
        for threads in [1usize, 3] {
            let par = Parallelism::pinned(threads);
            let mut fresh = vec![0.0f32; n * m];
            backend.matmul(&a, &b, n, k, m, &par, &mut fresh);
            let mut cached = vec![0.0f32; n * m];
            backend.matmul_packed(&a, &packed, n, &par, &mut cached);
            assert_eq!(fresh, cached, "matmul threads={threads}");
            let mut fresh = vec![0.0f32; n * m];
            backend.linear_relu(&a, &b, &bias, n, k, m, &par, &mut fresh);
            let mut cached = vec![0.0f32; n * m];
            backend.linear_relu_packed(&a, &packed, &bias, n, &par, &mut cached);
            assert_eq!(fresh, cached, "linear_relu threads={threads}");
        }
    }

    #[test]
    fn blocked_linear_relu_bit_identical_to_unfused() {
        let (n, k, m) = (35usize, 70usize, 33usize);
        let x = sample(n * k, 3);
        let w = sample(k * m, 4);
        let bias = sample(m, 5);
        for threads in [1usize, 3] {
            let par = Parallelism::pinned(threads);
            let mut unfused = vec![0.0f32; n * m];
            kernels::matmul_par(&x, &w, n, k, m, &par, &mut unfused);
            kernels::bias_relu_inplace(&mut unfused, &bias, n, m);
            let mut fused = vec![0.0f32; n * m];
            BlockedBackend.linear_relu(&x, &w, &bias, n, k, m, &par, &mut fused);
            for (a, b) in fused.iter().zip(&unfused) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
    }
}
