// Fixture for the fusion-scope rule. Seeded violations: ad-hoc fused
// composite kernel definitions in model code. Call sites never fire.
fn linear_relu_manual(x: &[f32], w: &[f32], b: &[f32]) -> Vec<f32> {
    x.iter().map(|v| (v * w[0] + b[0]).max(0.0)).collect()
}
pub fn fused_axpy(y: &mut [f32], x: &[f32], k: f32) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += k * xi;
    }
}
fn layer_norm_act_inline() {}
fn call_sites_are_fine(backend: &dyn Backend) {
    backend.axpy(&[], 1.0, &[], &mut []);
    let _ = backend.linear_relu; // mentioning the method is not defining it
    // a comment saying fn axpy must not fire either
}
// mega-lint: allow(fusion-scope, reason = "fixture: pragma silences the rule")
fn bias_leaky_relu_suppressed() {}
