//! Cross-step pack cache: packed GEMM operands reused between calls.
//!
//! `BlockedBackend` and `SimdBackend` both stream `b` through the
//! `k × NR` strip layout of [`crate::BlockedBackend`]'s packer. Training
//! replays the same weight matrices thousands of times, yet every GEMM
//! call used to repack its `b` from scratch — forward *and* backward
//! (which additionally re-transposes the weight). The [`PackCache`] keeps
//! one packed copy per `(parameter id, orientation)` pair alive across
//! tape runs; the trainer invalidates it at every optimizer step, the one
//! point where parameter values change.
//!
//! Contract: a cached pack is a pure copy of the source matrix
//! ([`crate::Backend::prepack`] performs no arithmetic), so consuming a
//! cached strip is bit-identical to packing fresh. Counters
//! `exec.pack.{hits,misses,invalidations}` count cache traffic only —
//! a backend that declines to pack (reference) never touches them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A matrix packed into the strip layout of the backend that produced it,
/// tagged with the logical `k × m` shape it was packed from.
///
/// Opaque outside `mega-exec`: only the backend that returned it from
/// [`crate::Backend::prepack`] knows the layout, and the `*_packed` entry
/// points assert the shape they are handed matches.
#[derive(Debug)]
pub struct PackedB {
    pub(crate) data: Vec<f32>,
    pub(crate) k: usize,
    pub(crate) m: usize,
}

impl PackedB {
    /// Wraps a backend's packed buffer with its logical source shape.
    pub(crate) fn new(data: Vec<f32>, k: usize, m: usize) -> Self {
        PackedB { data, k, m }
    }

    /// Rows of the logical (unpacked) matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the logical (unpacked) matrix.
    pub fn m(&self) -> usize {
        self.m
    }
}

/// Which matrix a cached pack was built from: the parameter itself (the
/// forward GEMM's `b`) or its transpose (the backward `dx = g · wᵀ` GEMM's
/// `b`). Caching the transposed orientation saves the per-call transpose
/// *and* the per-call pack on the backward hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Orientation {
    /// Packed from the parameter as stored (`k × m`).
    Normal,
    /// Packed from the parameter's transpose (`m × k`).
    Transposed,
}

/// Cache of packed `b` operands keyed by `(parameter id, orientation)`.
///
/// One cache is shared by every tape of a training run (see
/// `mega_gnn::Trainer`); `invalidate` must be called whenever parameter
/// values change — the optimizer step boundary — and clears everything.
/// Lookups for keys the backend declines to pack (reference backend)
/// return `None` and leave the counters untouched.
#[derive(Debug, Default)]
pub struct PackCache {
    entries: Mutex<BTreeMap<(u64, Orientation), Arc<PackedB>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PackCache {
    /// An empty cache.
    pub fn new() -> Self {
        PackCache::default()
    }

    /// Returns the cached pack for `(key, orientation)`, or builds one via
    /// `pack` and caches it. `pack` returning `None` means the backend has
    /// no packed layout; nothing is cached or counted, and the caller falls
    /// back to the unpacked kernel.
    pub fn get_or_pack(
        &self,
        key: u64,
        orientation: Orientation,
        pack: impl FnOnce() -> Option<PackedB>,
    ) -> Option<Arc<PackedB>> {
        {
            let entries = self.entries.lock().expect("pack cache poisoned");
            if let Some(packed) = entries.get(&(key, orientation)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if mega_obs::enabled() {
                    mega_obs::counter_add("exec.pack.hits", 1);
                }
                return Some(packed.clone());
            }
        }
        // Pack outside the lock: the copy is O(k·m) and other tapes may be
        // looking up different parameters concurrently.
        let packed = Arc::new(pack()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if mega_obs::enabled() {
            mega_obs::counter_add("exec.pack.misses", 1);
        }
        let mut entries = self.entries.lock().expect("pack cache poisoned");
        Some(entries.entry((key, orientation)).or_insert(packed).clone())
    }

    /// Drops every cached pack. Call at each optimizer step, after the
    /// parameters have been updated: any strip packed from the old values
    /// is stale from that point on.
    pub fn invalidate(&self) {
        let mut entries = self.entries.lock().expect("pack cache poisoned");
        if entries.is_empty() {
            return;
        }
        entries.clear();
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        if mega_obs::enabled() {
            mega_obs::counter_add("exec.pack.invalidations", 1);
        }
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Packs built (and cached) on lookup so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times a non-empty cache was cleared.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Number of packs currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("pack cache poisoned").len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(v: &[f32]) -> Option<PackedB> {
        Some(PackedB::new(v.to_vec(), 1, v.len()))
    }

    #[test]
    fn caches_per_key_and_orientation() {
        let cache = PackCache::new();
        let a = cache
            .get_or_pack(7, Orientation::Normal, || pack(&[1.0, 2.0]))
            .unwrap();
        let b = cache
            .get_or_pack(7, Orientation::Normal, || panic!("must hit"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // The transposed orientation is a distinct entry.
        let t = cache
            .get_or_pack(7, Orientation::Transposed, || pack(&[3.0]))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &t));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidate_clears_and_counts_once() {
        let cache = PackCache::new();
        cache.invalidate(); // empty: nothing to drop, nothing counted
        assert_eq!(cache.invalidations(), 0);
        cache
            .get_or_pack(1, Orientation::Normal, || pack(&[1.0]))
            .unwrap();
        cache.invalidate();
        assert_eq!(cache.invalidations(), 1);
        assert!(cache.is_empty());
        // Next lookup repacks: a miss, not a hit.
        cache
            .get_or_pack(1, Orientation::Normal, || pack(&[1.0]))
            .unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn declined_packs_stay_uncounted() {
        let cache = PackCache::new();
        assert!(cache.get_or_pack(9, Orientation::Normal, || None).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }
}
