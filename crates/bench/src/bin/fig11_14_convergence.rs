//! Figures 11–14: end-to-end convergence (loss/accuracy vs wall clock),
//! Mega vs the DGL baseline.
//!
//! Real CPU training with the simulated-GTX-1080 wall clock stamped on every
//! epoch (the systems quantity the paper plots). Both engines share model
//! initialization and see the same data, so final quality matches while Mega
//! reaches any given loss level in a fraction of the simulated time — ×2
//! (ZINC/GT), ×2.6 (AQSOL/GT), ×2.2 (CSL), ×1.6 (CYCLES/GCN) in the paper.

use mega_bench::{fmt, save_json, TableWriter};
use mega_datasets::{aqsol, csl, cycles, zinc, Dataset, DatasetSpec};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer, TrainingHistory};
use serde::Serialize;

#[derive(Serialize)]
struct Experiment {
    figure: String,
    dataset: String,
    model: String,
    paper_speedup: f64,
    measured_speedup: f64,
    dgl_final_val_loss: f64,
    mega_final_val_loss: f64,
    dgl_final_metric: f64,
    mega_final_metric: f64,
    dgl: TrainingHistory,
    mega: TrainingHistory,
}

fn run_pair(
    ds: &Dataset,
    kind: ModelKind,
    out_dim: usize,
    epochs: usize,
) -> (TrainingHistory, TrainingHistory) {
    let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, out_dim)
        .with_hidden(64)
        .with_layers(2)
        .with_heads(4)
        .with_seed(7);
    let dgl = Trainer::new(EngineChoice::Baseline)
        .with_epochs(epochs)
        .with_batch_size(64)
        .run(ds, cfg.clone());
    let mega = Trainer::new(EngineChoice::Mega)
        .with_epochs(epochs)
        .with_batch_size(64)
        .run(ds, cfg);
    (dgl, mega)
}

/// Simulated-time speedup to reach the baseline's best validation loss.
fn speedup(dgl: &TrainingHistory, mega: &TrainingHistory) -> f64 {
    let target = dgl.best_val_loss() * 1.02; // 2% tolerance band
    match (
        dgl.sim_seconds_to_loss(target),
        mega.sim_seconds_to_loss(target),
    ) {
        (Some(td), Some(tm)) if tm > 0.0 => td / tm,
        // Mega never reached the target: fall back to per-epoch time ratio.
        _ => dgl.epoch_sim_seconds / mega.epoch_sim_seconds,
    }
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(11);
    let epochs = 15;
    let cases: Vec<(&str, Dataset, ModelKind, usize, f64)> = vec![
        ("Fig 12", zinc(&spec), ModelKind::GraphTransformer, 1, 2.0),
        ("Fig 11", aqsol(&spec), ModelKind::GraphTransformer, 1, 2.6),
        ("Fig 13", csl(&spec), ModelKind::GraphTransformer, 4, 2.2),
        ("Fig 14", cycles(&spec), ModelKind::GatedGcn, 2, 1.6),
    ];
    let mut table = TableWriter::new(&[
        "figure",
        "dataset",
        "model",
        "paper speedup",
        "measured speedup",
        "DGL loss",
        "Mega loss",
        "DGL metric",
        "Mega metric",
    ]);
    let mut results = Vec::new();
    for (figure, ds, kind, out_dim, paper_speedup) in cases {
        mega_obs::info!("training {} ({}, {})...", ds.name, kind.label(), figure);
        let (dgl, mega) = run_pair(&ds, kind, out_dim, epochs);
        let s = speedup(&dgl, &mega);
        let (dl, ml) = (dgl.records.last().unwrap(), mega.records.last().unwrap());
        table.row(&[
            figure.to_string(),
            ds.name.clone(),
            kind.label().to_string(),
            format!("{paper_speedup:.1}x"),
            format!("{s:.2}x"),
            fmt(dl.val_loss, 4),
            fmt(ml.val_loss, 4),
            fmt(dl.val_metric, 4),
            fmt(ml.val_metric, 4),
        ]);
        mega_obs::data!(
            "\n=== {} — {} / {} : loss vs simulated seconds ===",
            figure,
            ds.name,
            kind.label()
        );
        let mut curve =
            TableWriter::new(&["epoch", "DGL t(s)", "DGL val", "Mega t(s)", "Mega val"]);
        for (a, b) in dgl.records.iter().zip(&mega.records) {
            curve.row(&[
                a.epoch.to_string(),
                fmt(a.sim_seconds, 3),
                fmt(a.val_loss, 4),
                fmt(b.sim_seconds, 3),
                fmt(b.val_loss, 4),
            ]);
        }
        curve.print();
        results.push(Experiment {
            figure: figure.to_string(),
            dataset: ds.name.clone(),
            model: kind.label().to_string(),
            paper_speedup,
            measured_speedup: s,
            dgl_final_val_loss: dl.val_loss,
            mega_final_val_loss: ml.val_loss,
            dgl_final_metric: dl.val_metric,
            mega_final_metric: ml.val_metric,
            dgl,
            mega,
        });
    }
    mega_obs::data!("\nFigures 11–14 — convergence summary\n");
    table.print();
    mega_obs::data!(
        "\nPaper claims: Mega converges to equal quality in a fraction of the wall clock."
    );
    save_json("fig11_14_convergence", &results);
}
