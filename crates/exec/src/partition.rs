//! Row ownership for the intra-op threaded GEMM drivers.
//!
//! All three matmul drivers (reference, blocked, SIMD) parallelize the same
//! way: output rows are split into one contiguous range per worker, each
//! worker computes its rows with the exact serial per-row kernel, and no two
//! workers ever touch the same output element — so threading cannot
//! reassociate a single floating-point fold and the threaded result is
//! bit-identical to serial by construction.
//!
//! [`par_rows`] is the shared fan-out: it slices the output buffer into the
//! disjoint `&mut` row ranges with [`split_at_mut`](slice::split_at_mut) and
//! hands each slice to a worker via
//! [`join_workers`](mega_core::parallel::join_workers). Workers write their
//! rows **in place** — the previous drivers routed every range through a
//! freshly allocated partial buffer plus a copy-back concatenation, which
//! cost an allocation and a full extra sweep of the output per call.
//!
//! Under the `race-check` feature the ranges are additionally claimed in a
//! shadow [`WriterMap`](crate::kernels::race::WriterMap) before any slicing
//! happens, so an overlapping or gappy partition panics with the same
//! diagnostics as the banded engine's chunk checker rather than tripping the
//! borrow-splitting asserts.

use mega_core::parallel::join_workers;

/// Splits `n` output rows into at most `workers` contiguous ranges with
/// boundaries rounded up to a multiple of `align` (the drivers pass the
/// `MC` row-tile height so no tile straddles two workers; `align = 1`
/// disables rounding). Empty ranges are dropped; the returned ranges
/// partition `[0, n)` in order.
pub(crate) fn row_ranges(n: usize, workers: usize, align: usize) -> Vec<(usize, usize)> {
    let workers = workers.max(1);
    let align = align.max(1);
    let mut ranges = Vec::with_capacity(workers);
    let mut lo = 0usize;
    for t in 0..workers {
        let ideal = (t + 1) * n / workers;
        let hi = if t + 1 == workers {
            n
        } else {
            ideal.div_ceil(align).saturating_mul(align).min(n)
        };
        if hi > lo {
            ranges.push((lo, hi));
            lo = hi;
        }
    }
    ranges
}

/// Runs `body(lo, hi, rows)` for every range, where `rows` is the disjoint
/// `&mut out[lo * m..hi * m]` slice of the `n × m` output — one worker per
/// range, the first range on the calling thread.
///
/// # Panics
///
/// Panics when the ranges do not partition `[0, n)` in ascending order
/// (under `race-check`, with the shadow writer map's overlap/gap
/// diagnostics; otherwise with a plain partition assert) or when
/// `out.len() != n * m`.
pub(crate) fn par_rows<F>(out: &mut [f32], n: usize, m: usize, ranges: &[(usize, usize)], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), n * m, "out must be {n}x{m}");
    #[cfg(feature = "race-check")]
    {
        let writers = crate::kernels::race::WriterMap::new("gemm output row", n);
        for (id, &(lo, hi)) in ranges.iter().enumerate() {
            writers.claim_range(lo, hi, id as u32);
        }
        writers.assert_complete();
    }
    let body = &body;
    let mut jobs = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut cursor = 0usize;
    for &(lo, hi) in ranges {
        assert!(
            lo == cursor && hi >= lo,
            "row ranges must partition [0, {n}) in order: got [{lo}, {hi}) at row {cursor}"
        );
        let (rows, tail) = rest.split_at_mut((hi - lo) * m);
        rest = tail;
        cursor = hi;
        jobs.push(move || body(lo, hi, rows));
    }
    assert!(
        cursor == n && rest.is_empty(),
        "row ranges cover only [0, {cursor}) of [0, {n})"
    );
    join_workers(jobs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ranges_partition_in_order() {
        for n in [0usize, 1, 7, 31, 32, 33, 100, 513] {
            for workers in [1usize, 2, 4, 7] {
                for align in [1usize, 32] {
                    let ranges = row_ranges(n, workers, align);
                    let mut cursor = 0;
                    for &(lo, hi) in &ranges {
                        assert_eq!(lo, cursor, "n={n} workers={workers} align={align}");
                        assert!(hi > lo, "empty range survived");
                        if hi != n {
                            assert_eq!(hi % align, 0, "unaligned interior boundary");
                        }
                        cursor = hi;
                    }
                    assert_eq!(cursor, n, "n={n} workers={workers} align={align}");
                    assert!(ranges.len() <= workers.max(1));
                }
            }
        }
    }

    #[test]
    fn par_rows_hands_out_disjoint_slices() {
        let n = 10;
        let m = 3;
        let mut out = vec![0.0f32; n * m];
        let ranges = row_ranges(n, 4, 1);
        par_rows(&mut out, n, m, &ranges, |lo, hi, rows| {
            assert_eq!(rows.len(), (hi - lo) * m);
            for (i, v) in rows.iter_mut().enumerate() {
                *v = (lo * m + i) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    #[cfg(not(feature = "race-check"))]
    #[should_panic(expected = "cover only")]
    fn par_rows_rejects_short_partitions() {
        let mut out = vec![0.0f32; 8];
        par_rows(&mut out, 4, 2, &[(0, 3)], |_, _, _| {});
    }

    #[test]
    #[cfg(feature = "race-check")]
    #[should_panic(expected = "never claimed")]
    fn par_rows_rejects_short_partitions() {
        // Same corruption as the non-race-check twin; the shadow writer map
        // gets there first with its gap diagnostic.
        let mut out = vec![0.0f32; 8];
        par_rows(&mut out, 4, 2, &[(0, 3)], |_, _, _| {});
    }
}
