//! The simulated device: allocator, kernel launches, timing, profiling.
//!
//! Every launch replays its memory-access stream — built from the *actual*
//! indices the workload would use — through the warp coalescer and the shared
//! L2 cache, then charges cycles with a roofline-style model:
//!
//! * compute cycles = flops / device flop throughput + instructions / core
//!   throughput;
//! * memory cycles = max(L2 bandwidth, DRAM bandwidth, DRAM latency /
//!   achievable memory-level parallelism) over the launch's transactions;
//! * the launch occupies `overhead + max(compute, memory)` cycles; exposed
//!   memory time is recorded as stall cycles.
//!
//! Scattered (index-driven) streams get the device's limited `scattered_mlp`
//! latency overlap; streaming kernels hide latency behind prefetch-friendly
//! access. This is precisely the mechanism the paper attributes the DGL
//! slowdown to, so MEGA's advantage *emerges* from the simulation rather than
//! being hard-coded.

use crate::cache::{Access, SectoredCache};
use crate::coalesce::warp_sectors;
use crate::device::DeviceConfig;
use crate::kernel::{KernelKind, KernelStats};
use crate::report::ProfileReport;
use std::collections::BTreeMap;

/// Base address of a device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr(pub u64);

/// How well a launch's access stream overlaps memory latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamKind {
    /// Sequential/prefetchable: latency fully hidden, bandwidth-bound.
    Streaming,
    /// Index-driven: limited in-flight requests (`DeviceConfig::scattered_mlp`).
    Scattered,
}

/// The simulated GPU with its profiler.
#[derive(Debug)]
pub struct Profiler {
    device: DeviceConfig,
    l2: SectoredCache,
    stats: BTreeMap<KernelKind, KernelStats>,
    next_addr: u64,
    total_cycles: u64,
}

struct LaunchOutcome {
    transactions: u64,
    hits: u64,
    misses: u64,
}

impl Profiler {
    /// A fresh device.
    pub fn new(device: DeviceConfig) -> Self {
        let l2 = SectoredCache::new(
            device.l2_bytes,
            device.l2_line_bytes,
            device.sector_bytes,
            device.l2_assoc,
        );
        Profiler {
            device,
            l2,
            stats: BTreeMap::new(),
            next_addr: 0x1000,
            total_cycles: 0,
        }
    }

    /// The device configuration.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// Allocates `bytes` of device memory (256-byte aligned bump allocator).
    pub fn alloc(&mut self, bytes: usize) -> DevicePtr {
        let base = self.next_addr;
        let aligned = (bytes as u64).div_ceil(256) * 256;
        self.next_addr += aligned.max(256);
        DevicePtr(base)
    }

    /// Total simulated cycles so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Total simulated seconds so far.
    pub fn elapsed_seconds(&self) -> f64 {
        self.device.cycles_to_seconds(self.total_cycles)
    }

    /// Snapshot of all per-kernel statistics.
    pub fn report(&self) -> ProfileReport {
        ProfileReport::new(self.device.clone(), self.stats.clone(), self.total_cycles)
    }

    /// Clears statistics and cache contents (keeps allocations).
    pub fn reset_stats(&mut self) {
        self.stats.clear();
        self.l2.reset();
        self.total_cycles = 0;
    }

    fn run_stream<I: IntoIterator<Item = u64>>(&mut self, element_addrs: I) -> LaunchOutcome {
        let mut out = LaunchOutcome {
            transactions: 0,
            hits: 0,
            misses: 0,
        };
        let sector = self.device.sector_bytes as u64;
        let warp = self.device.warp_size;
        let mut lane_buf: Vec<u64> = Vec::with_capacity(warp);
        let flush = |buf: &mut Vec<u64>, l2: &mut SectoredCache, out: &mut LaunchOutcome| {
            for s in warp_sectors(buf, sector) {
                out.transactions += 1;
                match l2.access_sector(s * sector) {
                    Access::Hit => out.hits += 1,
                    Access::SectorMiss | Access::LineMiss => out.misses += 1,
                }
            }
            buf.clear();
        };
        for a in element_addrs {
            lane_buf.push(a);
            if lane_buf.len() == warp {
                flush(&mut lane_buf, &mut self.l2, &mut out);
            }
        }
        if !lane_buf.is_empty() {
            flush(&mut lane_buf, &mut self.l2, &mut out);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn charge(
        &mut self,
        kind: KernelKind,
        flops: u64,
        instructions: u64,
        outcome: LaunchOutcome,
        stream: StreamKind,
        balance: f64,
        streamed_misses: u64,
    ) {
        let d = &self.device;
        // `streamed_misses` model sequential companion traffic (output
        // writes, pass reads): they consume DRAM bandwidth but are
        // prefetch-friendly, so they never pay the scattered-latency term.
        let misses = outcome.misses + streamed_misses;
        let transactions = outcome.transactions + streamed_misses;
        let compute = (flops as f64 / d.flops_per_cycle())
            + (instructions as f64 / (d.sm_count * d.cores_per_sm) as f64);
        let l2_cycles = transactions as f64 * d.sector_bytes as f64 / d.l2_bytes_per_cycle;
        let bw_cycles = misses as f64 * d.sector_bytes as f64 / d.dram_bytes_per_cycle();
        // Scattered (index-driven) access is a dependent two-level load:
        // every transaction pays its service latency (L2 or DRAM), amortized
        // only over the achievable memory-level parallelism. Streaming access
        // hides latency entirely behind prefetch.
        let lat_cycles = match stream {
            StreamKind::Streaming => 0.0,
            StreamKind::Scattered => {
                (outcome.hits as f64 * d.l2_latency_cycles as f64
                    + outcome.misses as f64 * d.dram_latency_cycles as f64)
                    / d.scattered_mlp as f64
            }
        };
        let mem = l2_cycles.max(bw_cycles).max(lat_cycles);
        let body = compute.max(mem);
        let total = d.launch_overhead_cycles as f64 + body;
        let stall = (body - compute).max(0.0);

        let s = self.stats.entry(kind).or_default();
        s.invocations += 1;
        s.load_transactions += transactions;
        s.l2_hits += outcome.hits;
        s.l2_misses += misses;
        s.flops += flops;
        s.instructions += instructions;
        s.cycles += total as u64;
        s.stall_cycles += stall as u64;
        s.balance_sum += balance.clamp(0.0, 1.0);
        self.total_cycles += total as u64;
    }

    /// Dense matrix multiply `C(m×n) = A(m×k) · B(k×n)` with f32 elements.
    ///
    /// Shared-memory tiling is modeled analytically (each input element is
    /// refetched once per tile pass, served from L2/shared); the cache is
    /// touched once per input/output element to model pollution.
    pub fn launch_sgemm(
        &mut self,
        a: DevicePtr,
        b: DevicePtr,
        c: DevicePtr,
        m: usize,
        n: usize,
        k: usize,
    ) {
        self.launch_sgemm_fused(a, b, c, m, n, k, 0);
    }

    /// Dense linear layer with the fused bias + ReLU epilogue:
    /// `C = relu(A·B + bias)` as **one** launch. The epilogue runs in
    /// registers between the accumulator and the output store, so relative
    /// to [`Profiler::launch_sgemm`] it adds two flops per output element
    /// (add, max) and *zero* extra memory sweeps — which is precisely why
    /// real frameworks fuse it, and why modeling it as a separate
    /// elementwise launch over-charged a full read+write pass over `C`.
    pub fn launch_linear_relu(
        &mut self,
        a: DevicePtr,
        b: DevicePtr,
        c: DevicePtr,
        m: usize,
        n: usize,
        k: usize,
    ) {
        self.launch_sgemm_fused(a, b, c, m, n, k, 2 * (m * n) as u64);
    }

    #[allow(clippy::too_many_arguments)]
    fn launch_sgemm_fused(
        &mut self,
        a: DevicePtr,
        b: DevicePtr,
        c: DevicePtr,
        m: usize,
        n: usize,
        k: usize,
        epilogue_flops: u64,
    ) {
        const TILE: usize = 64;
        let flops = 2 * m as u64 * n as u64 * k as u64 + epilogue_flops;
        // Compulsory traffic: touch every input/output element once.
        let addrs = (0..m * k)
            .step_by(8)
            .map(move |i| a.0 + (i * 4) as u64)
            .chain((0..k * n).step_by(8).map(move |i| b.0 + (i * 4) as u64))
            .chain((0..m * n).step_by(8).map(move |i| c.0 + (i * 4) as u64));
        let outcome = self.run_stream(addrs);
        // Tiling refetch traffic (hits in L2/shared): A refetched n/TILE
        // times, B refetched m/TILE times.
        let refetch = (m * k * (n.div_ceil(TILE)).saturating_sub(1)
            + k * n * (m.div_ceil(TILE)).saturating_sub(1)) as u64
            / 8;
        let outcome = LaunchOutcome {
            transactions: outcome.transactions + refetch,
            hits: outcome.hits + refetch,
            misses: outcome.misses,
        };
        // Tile-quantization balance: last partial tiles idle some lanes.
        let eff_m = m as f64 / (m.div_ceil(TILE) * TILE) as f64;
        let eff_n = n as f64 / (n.div_ceil(TILE) * TILE) as f64;
        let balance = (0.85 + 0.15 * eff_m * eff_n).min(1.0);
        self.charge(
            KernelKind::Sgemm,
            flops,
            (m * n) as u64,
            outcome,
            StreamKind::Streaming,
            balance,
            0,
        );
    }

    /// Index-driven row gather: `dst[i] = src[index[i]]` with `feat_dim` f32
    /// columns per row. Reads follow the index (scattered); writes stream.
    pub fn launch_gather(
        &mut self,
        src: DevicePtr,
        index: &[usize],
        feat_dim: usize,
        dst_rows: usize,
    ) {
        let row_bytes = (feat_dim * 4) as u64;
        let addrs = index.iter().flat_map(move |&r| {
            let src_base = src.0 + r as u64 * row_bytes;
            (0..feat_dim).map(move |c| src_base + (c * 4) as u64)
        });
        let outcome = self.run_stream(addrs);
        let instructions = (index.len() * feat_dim) as u64 * 2;
        self.charge(
            KernelKind::DglGather,
            0,
            instructions,
            outcome,
            StreamKind::Scattered,
            1.0,
            (dst_rows * feat_dim / 8) as u64,
        );
    }

    /// Index-driven scatter-add: `dst[index[i]] += src[i]` with atomics.
    /// Writes follow the index; the balance factor reflects serialization on
    /// popular destinations (the paper's workload-imbalance bottleneck).
    pub fn launch_scatter(
        &mut self,
        dst: DevicePtr,
        index: &[usize],
        feat_dim: usize,
        dst_rows: usize,
    ) {
        let row_bytes = (feat_dim * 4) as u64;
        let mut counts = vec![0u32; dst_rows.max(1)];
        for &r in index {
            if r < counts.len() {
                counts[r] += 1;
            }
        }
        let addrs = index.iter().flat_map(move |&r| {
            let dst_base = dst.0 + r as u64 * row_bytes;
            (0..feat_dim).map(move |c| dst_base + (c * 4) as u64)
        });
        let outcome = self.run_stream(addrs);
        let max = counts.iter().copied().max().unwrap_or(1).max(1) as f64;
        let mean = index.len() as f64 / counts.iter().filter(|&&c| c > 0).count().max(1) as f64;
        let balance = (mean / max).clamp(0.05, 1.0);
        // Atomic RMW: one read + one write instruction per element.
        let instructions = (index.len() * feat_dim) as u64 * 3;
        self.charge(
            KernelKind::DglScatter,
            0,
            instructions,
            outcome,
            StreamKind::Scattered,
            balance,
            (index.len() * feat_dim / 8) as u64,
        );
    }

    /// `cub` radix sort of `n_keys` 32-bit keys (4 digit passes). Reads
    /// stream; bucket writes scatter.
    pub fn launch_sort(&mut self, keys: DevicePtr, n_keys: usize) {
        // One traced scattered pass stands in for the write side of all four
        // digit passes (a hash stands in for data-dependent bucket targets).
        let modulus = n_keys.max(1) as u64;
        let addrs = (0..n_keys).map(move |i| {
            let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) % modulus;
            keys.0 + h * 4
        });
        let outcome = self.run_stream(addrs);
        let instructions = n_keys as u64 * 4 * 6;
        self.charge(
            KernelKind::CubSort,
            0,
            instructions,
            outcome,
            StreamKind::Scattered,
            0.9,
            (n_keys * 4 / 8) as u64,
        );
    }

    /// Contiguous copy of `bytes`.
    pub fn launch_memcpy(&mut self, ptr: DevicePtr, bytes: usize) {
        let addrs = (0..bytes).step_by(8).map(move |o| ptr.0 + o as u64);
        let outcome = self.run_stream(addrs);
        self.charge(
            KernelKind::Memcpy,
            0,
            (bytes / 4) as u64,
            outcome,
            StreamKind::Streaming,
            1.0,
            0,
        );
    }

    /// MEGA banded gather: position `i` reads rows `i−ω ..= i+ω` of the
    /// path-ordered embedding buffer — sequential, window-overlapping reads.
    pub fn launch_band_gather(
        &mut self,
        path_buf: DevicePtr,
        path_len: usize,
        window: usize,
        feat_dim: usize,
    ) {
        let row_bytes = (feat_dim * 4) as u64;
        let addrs = (0..path_len).flat_map(move |i| {
            let lo = i.saturating_sub(window);
            let hi = (i + window).min(path_len.saturating_sub(1));
            (lo..=hi).flat_map(move |j| {
                let base = path_buf.0 + j as u64 * row_bytes;
                (0..feat_dim).map(move |c| base + (c * 4) as u64)
            })
        });
        let elements = (path_len * (2 * window + 1) * feat_dim) as u64;
        let outcome = self.run_stream(addrs);
        let instructions = elements * 2;
        self.charge(
            KernelKind::MegaBandGather,
            0,
            instructions,
            outcome,
            StreamKind::Streaming,
            1.0,
            0,
        );
    }

    /// MEGA banded weight gradient: for every band slot `(lo, hi)` the
    /// kernel reads row `hi` of the activations and row `lo` of the
    /// upstream gradient (and vice versa), then writes one scalar per edge.
    /// Both read streams walk the band sequentially — the same
    /// prefetch-friendly layout as [`Profiler::launch_band_gather`] — but
    /// the traffic is doubled (two buffers) and the kernel retires one
    /// multiply-add per element read.
    pub fn launch_band_wgrad(
        &mut self,
        x_buf: DevicePtr,
        grad_buf: DevicePtr,
        path_len: usize,
        window: usize,
        feat_dim: usize,
    ) {
        let row_bytes = (feat_dim * 4) as u64;
        let addrs = (0..path_len).flat_map(move |i| {
            let lo = i.saturating_sub(window);
            let hi = (i + window).min(path_len.saturating_sub(1));
            (lo..=hi).flat_map(move |j| {
                let x_base = x_buf.0 + j as u64 * row_bytes;
                let g_base = grad_buf.0 + j as u64 * row_bytes;
                (0..feat_dim).flat_map(move |c| [x_base + (c * 4) as u64, g_base + (c * 4) as u64])
            })
        });
        let elements = (path_len * (2 * window + 1) * feat_dim) as u64 * 2;
        let outcome = self.run_stream(addrs);
        // One mul + one add per element pair, plus address math.
        let flops = elements;
        let instructions = elements * 2;
        // Per-edge scalar outputs stream out sequentially.
        let edge_writes = (path_len * window / 8).max(1) as u64;
        self.charge(
            KernelKind::MegaBandWgrad,
            flops,
            instructions,
            outcome,
            StreamKind::Streaming,
            1.0,
            edge_writes,
        );
    }

    /// MEGA scatter of path positions back to node rows. `position_to_node`
    /// maps each path position to its node row; first appearances follow
    /// path order, so writes are near-sequential.
    pub fn launch_band_scatter(
        &mut self,
        node_buf: DevicePtr,
        position_to_node: &[usize],
        feat_dim: usize,
    ) {
        let row_bytes = (feat_dim * 4) as u64;
        let addrs = position_to_node.iter().flat_map(move |&v| {
            let base = node_buf.0 + v as u64 * row_bytes;
            (0..feat_dim).map(move |c| base + (c * 4) as u64)
        });
        let elements = (position_to_node.len() * feat_dim) as u64;
        let outcome = self.run_stream(addrs);
        let instructions = elements * 3;
        self.charge(
            KernelKind::MegaBandScatter,
            0,
            instructions,
            outcome,
            StreamKind::Streaming,
            1.0,
            0,
        );
    }

    /// Elementwise neural op over `elements` f32 values (`flops_per_element`
    /// each), streaming read + write.
    pub fn launch_elementwise(&mut self, ptr: DevicePtr, elements: usize, flops_per_element: u64) {
        let addrs = (0..elements)
            .step_by(8)
            .map(move |i| ptr.0 + (i * 4) as u64);
        let outcome = self.run_stream(addrs);
        self.charge(
            KernelKind::Elementwise,
            elements as u64 * flops_per_element,
            elements as u64,
            outcome,
            StreamKind::Streaming,
            1.0,
            (elements / 8) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler() -> Profiler {
        Profiler::new(DeviceConfig::gtx_1080())
    }

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut p = profiler();
        let a = p.alloc(100);
        let b = p.alloc(100);
        assert!(b.0 >= a.0 + 256);
        assert_eq!(a.0 % 256, 0);
    }

    #[test]
    fn sgemm_is_compute_dominated() {
        let mut p = profiler();
        let a = p.alloc(512 * 512 * 4);
        let b = p.alloc(512 * 512 * 4);
        let c = p.alloc(512 * 512 * 4);
        p.launch_sgemm(a, b, c, 512, 512, 512);
        let r = p.report();
        let row = r.kernel(KernelKind::Sgemm).unwrap();
        assert!(row.sm_efficiency > 0.7, "sgemm eff {}", row.sm_efficiency);
        assert!(row.stall_pct < 0.3, "sgemm stall {}", row.stall_pct);
    }

    #[test]
    fn fused_linear_relu_adds_epilogue_flops_but_no_traffic() {
        // Compute-dominated shape (see `sgemm_is_compute_dominated`), so the
        // epilogue's extra flops are visible in cycles; at memory-bound
        // shapes they vanish into the roofline max, which is the point of
        // fusing.
        let (m, n, k) = (512usize, 512usize, 512usize);
        let launch = |fused: bool| {
            let mut p = profiler();
            let a = p.alloc(m * k * 4);
            let b = p.alloc(k * n * 4);
            let c = p.alloc(m * n * 4);
            if fused {
                p.launch_linear_relu(a, b, c, m, n, k);
            } else {
                p.launch_sgemm(a, b, c, m, n, k);
            }
            let r = p.report();
            assert!(
                r.kernel(KernelKind::Elementwise).is_none(),
                "the fused epilogue must not surface as an elementwise launch"
            );
            r.kernel(KernelKind::Sgemm).unwrap().clone()
        };
        let bare = launch(false);
        let fused = launch(true);
        // The in-register epilogue (one add + one max per output element)
        // costs compute cycles on top of the bare GEMM ...
        assert!(
            fused.cycles > bare.cycles,
            "fused {} vs bare {} cycles",
            fused.cycles,
            bare.cycles
        );
        // ... but never memory: identical traffic through the whole
        // coalescer/cache pipeline.
        assert_eq!(fused.load_transactions, bare.load_transactions);
        assert_eq!(fused.l2_hits, bare.l2_hits);
        assert_eq!(fused.l2_misses, bare.l2_misses);
    }

    #[test]
    fn scattered_gather_stalls_more_than_sequential_copy() {
        let mut p = profiler();
        let n_rows = 40_000usize;
        let feat = 16usize;
        let src = p.alloc(n_rows * feat * 4);
        // Random-ish permutation with a large stride.
        let idx: Vec<usize> = (0..n_rows).map(|i| (i * 7919) % n_rows).collect();
        p.launch_gather(src, &idx, feat, n_rows);
        let dst = p.alloc(n_rows * feat * 4);
        p.launch_memcpy(dst, n_rows * feat * 4);
        let r = p.report();
        let g = r.kernel(KernelKind::DglGather).unwrap();
        let m = r.kernel(KernelKind::Memcpy).unwrap();
        assert!(
            g.stall_pct > m.stall_pct,
            "gather {} vs memcpy {}",
            g.stall_pct,
            m.stall_pct
        );
        assert!(g.sm_efficiency < 0.5, "gather eff {}", g.sm_efficiency);
    }

    #[test]
    fn band_gather_beats_dgl_gather_per_byte() {
        let mut p = profiler();
        let rows = 20_000usize;
        let feat = 64usize;
        let buf = p.alloc(2 * rows * feat * 4);
        // DGL: gather 2 rows per edge with scattered indices.
        let idx: Vec<usize> = (0..rows).map(|i| (i * 6151) % rows).collect();
        p.launch_gather(buf, &idx, feat, rows);
        let dgl_cycles = p.report().kernel(KernelKind::DglGather).unwrap().cycles;
        p.reset_stats();
        // MEGA: banded read of the same volume (window 1 reads ~3x per row
        // but from cache).
        p.launch_band_gather(buf, rows, 1, feat);
        let mega_cycles = p
            .report()
            .kernel(KernelKind::MegaBandGather)
            .unwrap()
            .cycles;
        assert!(
            mega_cycles * 2 < dgl_cycles,
            "mega {mega_cycles} vs dgl {dgl_cycles}"
        );
    }

    #[test]
    fn scatter_balance_reflects_skew() {
        let mut p = profiler();
        let dst = p.alloc(1000 * 16 * 4);
        // Balanced: each destination hit once.
        let idx: Vec<usize> = (0..1000).collect();
        p.launch_scatter(dst, &idx, 16, 1000);
        let balanced = p.report().kernel(KernelKind::DglScatter).unwrap().balance;
        p.reset_stats();
        // Skewed: hub destination takes half the writes.
        let idx: Vec<usize> = (0..1000).map(|i| if i % 2 == 0 { 0 } else { i }).collect();
        p.launch_scatter(dst, &idx, 16, 1000);
        let skewed = p.report().kernel(KernelKind::DglScatter).unwrap().balance;
        assert!(skewed < balanced, "skewed {skewed} vs balanced {balanced}");
    }

    #[test]
    fn band_wgrad_records_its_own_kernel_kind() {
        let mut p = profiler();
        let rows = 4_000usize;
        let feat = 32usize;
        let x = p.alloc(rows * feat * 4);
        let g = p.alloc(rows * feat * 4);
        p.launch_band_wgrad(x, g, rows, 2, feat);
        let r = p.report();
        let w = r
            .kernel(KernelKind::MegaBandWgrad)
            .expect("wgrad kernel recorded");
        assert_eq!(w.invocations, 1);
        assert!(w.cycles > 0, "wgrad charges cycles");
        assert!(
            r.kernel(KernelKind::MegaBandGather).is_none(),
            "no longer aliased to band gather"
        );
        // Reads two buffers along the band: more traffic than one gather
        // of the same shape.
        let mut q = profiler();
        let buf = q.alloc(rows * feat * 4);
        q.launch_band_gather(buf, rows, 2, feat);
        let gather = q
            .report()
            .kernel(KernelKind::MegaBandGather)
            .unwrap()
            .load_transactions;
        assert!(
            w.load_transactions > gather,
            "wgrad {} vs gather {gather}",
            w.load_transactions
        );
    }

    #[test]
    fn cycles_accumulate_monotonically() {
        let mut p = profiler();
        let buf = p.alloc(4096);
        assert_eq!(p.total_cycles(), 0);
        p.launch_memcpy(buf, 4096);
        let t1 = p.total_cycles();
        assert!(t1 > 0);
        p.launch_memcpy(buf, 4096);
        assert!(p.total_cycles() > t1);
        assert!(p.elapsed_seconds() > 0.0);
    }

    #[test]
    fn l2_reuse_between_launches() {
        let mut p = profiler();
        let buf = p.alloc(64 * 1024); // fits in L2
        p.launch_memcpy(buf, 64 * 1024);
        let misses_first = p.report().kernel(KernelKind::Memcpy).unwrap().l2_misses;
        p.launch_memcpy(buf, 64 * 1024);
        let misses_both = p.report().kernel(KernelKind::Memcpy).unwrap().l2_misses;
        // Second pass hits in L2: total misses barely grow.
        assert!(misses_both < misses_first * 2);
    }
}
