// `undocumented-unsafe` fixture: one justified site, one bare site.
pub fn documented(p: *const f32) -> f32 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn bare(p: *const f32) -> f32 {
    unsafe { *p }
}
