//! Quickstart: preprocess a graph with MEGA and inspect the result.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Builds the demonstration graph of the paper's Fig. 3a, runs the objective
//! traversal (Algorithm 1), and prints the path representation, the band
//! mask, and the Weisfeiler-Lehman similarity scores that show 1-hop
//! aggregation is preserved exactly.

use mega::core::{preprocess, MegaConfig, WindowPolicy};
use mega::graph::GraphBuilder;
use mega::wl::{global_similarity, path_similarity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 7-node demonstration graph of Fig. 3a.
    let g = GraphBuilder::undirected(7)
        .edges([
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 5),
            (2, 3),
            (2, 6),
            (3, 6),
            (3, 4),
            (4, 6),
            (5, 6),
        ])?
        .build()?;
    println!(
        "input graph: {} nodes, {} edges, mean degree {:.2}",
        g.node_count(),
        g.edge_count(),
        g.mean_degree()
    );

    // Preprocess: traverse and build the attention schedule.
    let config = MegaConfig::default().with_window(WindowPolicy::Fixed(1));
    let schedule = preprocess(&g, &config)?;
    let stats = schedule.stats();

    println!("\npath representation (window = {}):", stats.window);
    let path = schedule.path();
    let steps: Vec<String> = (0..path.len())
        .map(|i| {
            let v = path.node_at(i);
            if i > 0 && path.is_virtual_step(i) {
                format!("~>{v}") // virtual edge (jump)
            } else if i > 0 {
                format!("->{v}")
            } else {
                format!("{v}")
            }
        })
        .collect();
    println!("  {}", steps.join(" "));
    println!(
        "  length {} ({} revisits, {} virtual edges, expansion {:.2}x)",
        stats.path_len, stats.revisits, stats.virtual_edges, stats.expansion
    );

    println!(
        "\nband mask: {} active slots covering {:.0}% of edges, density {:.2}",
        schedule.band().covered_edge_count(),
        stats.coverage * 100.0,
        stats.band_density,
    );
    for slot in schedule.band().active_slots() {
        println!(
            "  positions ({:2}, {:2})  carry edge {:2} = ({}, {})",
            slot.lo,
            slot.hi,
            slot.edge,
            g.edge_list().pairs()[slot.edge].0,
            g.edge_list().pairs()[slot.edge].1,
        );
    }

    println!("\naggregation similarity vs the original graph:");
    for hops in 1..=3 {
        println!(
            "  {hops}-hop: path {:.3}  |  global attention {:.3}",
            path_similarity(&g, &schedule, hops),
            global_similarity(&g, hops)
        );
    }
    println!("\n1-hop similarity is exactly 1.0: banded attention over the path computes");
    println!("the same neighbor sums as true graph attention, with sequential memory access.");
    Ok(())
}
