//! Reachability audits over the call graph, plus the findings ratchet.
//!
//! - **`unsafe-reach`**: the exact set of public fns that transitively
//!   reach an `unsafe` token (over *static* edges only — bare and
//!   qualified calls; `.method(...)` dispatch through the `Backend` trait
//!   is the audited seam and would otherwise make every caller "reach
//!   unsafe" via the SIMD impl). The set is diffed against the checked-in
//!   [`UNSAFE_AUDIT`] file: a new reacher *and* a stale entry both fail,
//!   so the file stays an exact, reviewed inventory.
//! - **`panic-surface`**: panic tokens (`panic!`, asserts, `.unwrap()`,
//!   `.expect()`) on fns reachable from the hot kernel surface
//!   ([`HOT_SURFACE`] public fns) fire one finding per fn at its
//!   definition line — so a single allow pragma covers the fn.
//! - **`span-coverage`**: every public fn on the hot surface must open a
//!   `mega_obs::span` itself, call something that does, or run under a
//!   span opened above it — otherwise PR 7's roofline/report attribution
//!   silently loses the kernel.
//! - **Ratchet**: [`RATCHET_FILE`] pins a per-rule baseline count that may
//!   only decrease, making graph rules adoptable without a big-bang
//!   cleanup.

use crate::graph::{bfs, Graph};
use crate::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// The checked-in exact inventory of unsafe-reaching public fns.
pub const UNSAFE_AUDIT: &str = "crates/analysis/audit/unsafe_reach.txt";

/// The checked-in per-rule baseline counts.
pub const RATCHET_FILE: &str = "crates/analysis/audit/ratchet.txt";

/// The hot kernel surface: public fns in these logical files are the
/// entry points for the panic-surface and span-coverage audits (the exec
/// kernels — dense, banded, and segment ops — and the distributed
/// executor's step loop).
pub const HOT_SURFACE: [&str; 2] = ["crates/exec/src/kernels.rs", "crates/dist/src/exec.rs"];

/// Crates never traversed or reported by the hot-path audits: mega-obs is
/// the audited telemetry layer (panic-free when disabled, and its enabled
/// paths are not kernel arithmetic), and the linter itself never runs on
/// the hot path.
fn audit_exempt(scope: &str) -> bool {
    scope.starts_with("crates/obs/") || scope.starts_with("crates/analysis/")
}

/// Computes the sorted qualified names of public fns that transitively
/// reach `unsafe` over static edges.
pub(crate) fn unsafe_reachers(g: &Graph) -> Vec<String> {
    let rev = g.reverse_edges(true);
    let seeds: Vec<usize> = (0..g.fns.len()).filter(|&i| g.fns[i].has_unsafe).collect();
    let parents = bfs(&rev, seeds, |_| false);
    let mut names: BTreeSet<String> = BTreeSet::new();
    for (i, f) in g.fns.iter().enumerate() {
        if parents[i].is_some() && f.is_pub && !f.in_test {
            names.insert(f.qualified());
        }
    }
    names.into_iter().collect()
}

/// Diffs the computed unsafe-reach set against the audit file's entries.
pub(crate) fn unsafe_reach(g: &Graph, audit_entries: &[String], findings: &mut Vec<Finding>) {
    let rev = g.reverse_edges(true);
    let seeds: Vec<usize> = (0..g.fns.len()).filter(|&i| g.fns[i].has_unsafe).collect();
    let parents = bfs(&rev, seeds, |_| false);
    let audited: BTreeSet<&str> = audit_entries.iter().map(String::as_str).collect();
    let mut computed: BTreeMap<String, usize> = BTreeMap::new();
    for (i, f) in g.fns.iter().enumerate() {
        if parents[i].is_some() && f.is_pub && !f.in_test {
            computed.entry(f.qualified()).or_insert(i);
        }
    }
    for (name, &i) in &computed {
        if !audited.contains(name.as_str()) {
            let f = &g.fns[i];
            findings.push(Finding {
                file: f.file.clone(),
                line: f.line,
                rule: Rule::UnsafeReach,
                message: format!(
                    "`pub fn {}` newly reaches an unsafe block (chain: {}); review the \
                     path and append `{}` to {UNSAFE_AUDIT}",
                    f.name,
                    chain_to_seed(g, &parents, i),
                    name
                ),
            });
        }
    }
    for (pos, entry) in audit_entries.iter().enumerate() {
        if !computed.contains_key(entry) {
            findings.push(Finding {
                file: UNSAFE_AUDIT.to_string(),
                line: pos + 1,
                rule: Rule::UnsafeReach,
                message: format!(
                    "audit entry `{entry}` no longer reaches unsafe (or no longer \
                     exists); remove the stale line"
                ),
            });
        }
    }
}

/// One finding per panic-containing fn reachable from the hot surface.
pub(crate) fn panic_surface(g: &Graph, findings: &mut Vec<Finding>) {
    let entries = surface_fns(g);
    let parents = g.reach(entries, false, |i| {
        audit_exempt(&g.fns[i].scope) || g.fns[i].in_test
    });
    for (i, f) in g.fns.iter().enumerate() {
        if parents[i].is_none() || f.in_test || audit_exempt(&f.scope) || f.panics.is_empty() {
            continue;
        }
        let sites: Vec<String> = f
            .panics
            .iter()
            .take(4)
            .map(|p| format!("`{}` (line {})", p.what, p.line))
            .collect();
        let more = f.panics.len().saturating_sub(4);
        let suffix = if more > 0 {
            format!(" and {more} more")
        } else {
            String::new()
        };
        findings.push(Finding {
            file: f.file.clone(),
            line: f.line,
            rule: Rule::PanicSurface,
            message: format!(
                "`fn {}` is reachable from the hot kernel surface ({}) and can panic: \
                 {}{}; return/propagate errors, hoist checks to plan validation, or \
                 allow with a reason",
                f.name,
                chain_to_seed(g, &parents, i),
                sites.join(", "),
                suffix
            ),
        });
    }
}

/// Surface pub fns must open or run under a `mega_obs` span.
pub(crate) fn span_coverage(g: &Graph, findings: &mut Vec<Finding>) {
    let openers: Vec<usize> = (0..g.fns.len()).filter(|&i| g.fns[i].opens_span).collect();
    // Fns whose execution sits inside a span opened above them.
    let under = g.reach(openers.iter().copied(), false, |_| false);
    // Fns that transitively call a span opener (their main work is
    // attributed through the callee's span).
    let rev = g.reverse_edges(false);
    let calls_opener = bfs(&rev, openers.iter().copied(), |_| false);
    for i in surface_fns(g) {
        let f = &g.fns[i];
        if f.opens_span || under[i].is_some() || calls_opener[i].is_some() {
            continue;
        }
        findings.push(Finding {
            file: f.file.clone(),
            line: f.line,
            rule: Rule::SpanCoverage,
            message: format!(
                "`pub fn {}` on the audited kernel surface neither opens a `mega_obs` \
                 span nor runs under one; open one (`let _g = mega_obs::span(\"...\");`) \
                 so roofline/report attribution sees it, or allow with a reason",
                f.name
            ),
        });
    }
}

/// Public, non-test fns whose logical file is on [`HOT_SURFACE`].
fn surface_fns(g: &Graph) -> Vec<usize> {
    (0..g.fns.len())
        .filter(|&i| {
            let f = &g.fns[i];
            f.is_pub && !f.in_test && f.has_body && HOT_SURFACE.contains(&f.scope.as_str())
        })
        .collect()
}

/// Renders `seed → ... → node` following BFS parents.
fn chain_to_seed(g: &Graph, parents: &[Option<usize>], mut at: usize) -> String {
    let mut names = vec![g.fns[at].name.clone()];
    let mut hops = 0;
    while let Some(p) = parents[at] {
        if p == at || hops > 64 {
            break;
        }
        names.push(g.fns[p].name.clone());
        at = p;
        hops += 1;
    }
    names.reverse();
    names.join(" → ")
}

// ---------------------------------------------------------------------------
// Ratchet
// ---------------------------------------------------------------------------

/// Parsed baseline counts from [`RATCHET_FILE`].
#[derive(Debug, Default)]
pub struct Ratchet {
    /// `(rule, baseline, 1-based line in the ratchet file)`.
    entries: Vec<(Rule, usize, usize)>,
}

impl Ratchet {
    /// Parses `<rule-id> <count>` lines (`#` comments and blanks skipped).
    /// Malformed lines become findings at the ratchet file itself.
    pub fn parse(text: &str, findings: &mut Vec<Finding>) -> Ratchet {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut bad = |why: String| {
                findings.push(Finding {
                    file: RATCHET_FILE.to_string(),
                    line: idx + 1,
                    rule: Rule::BadPragma,
                    message: why,
                });
            };
            let Some((id, count)) = line.split_once(char::is_whitespace) else {
                bad(format!(
                    "ratchet line must be `<rule-id> <count>`, got `{line}`"
                ));
                continue;
            };
            let Some(rule) = Rule::from_id(id.trim()) else {
                bad(format!("ratchet names unknown rule `{}`", id.trim()));
                continue;
            };
            let Ok(count) = count.trim().parse::<usize>() else {
                bad(format!(
                    "ratchet count must be a number, got `{}`",
                    count.trim()
                ));
                continue;
            };
            entries.push((rule, count, idx + 1));
        }
        Ratchet { entries }
    }

    /// The baseline for `rule`, if ratcheted.
    pub fn baseline(&self, rule: Rule) -> Option<usize> {
        self.entries
            .iter()
            .find(|(r, _, _)| *r == rule)
            .map(|(_, b, _)| *b)
    }

    /// `(rule, baseline, line)` entries in file order.
    pub fn entries(&self) -> &[(Rule, usize, usize)] {
        &self.entries
    }
}
