//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace uses:
//! range/tuple/`Just` strategies, `prop_map`/`prop_flat_map`,
//! `prop_oneof!`, `proptest::collection::vec`, and the `proptest!` test
//! macro with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Unlike upstream there is **no shrinking**: each test runs `cases`
//! deterministically seeded random inputs (seed derived from the test name),
//! and a failing case panics via `assert!` with the stringified condition.
//! Rejected cases (`prop_assume!`) are regenerated up to a bounded number of
//! attempts.

#![forbid(unsafe_code)]

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Run-count configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must execute.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Marker returned by `prop_assume!` when a generated case is rejected.
#[derive(Debug)]
pub struct Reject;

/// Error type of a `proptest!` body (upstream-compatible name).
///
/// In this shim, assertion failures panic immediately (there is no
/// shrinking), so the only inhabitant in practice is a rejected case.
pub type TestCaseError = Reject;

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between alternatives, as produced by `prop_oneof!`.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($t:ident),+)),+) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Generates one input from `strategy` and feeds it to `f`.
///
/// Exists so the `proptest!` macro's closure gets its parameter type from
/// this function's signature — method calls inside the body would otherwise
/// hit "type annotations needed" on the closure parameters.
///
/// # Errors
///
/// Propagates `f`'s rejection (from `prop_assume!`).
pub fn run_one<S, F>(strategy: &S, rng: &mut StdRng, f: F) -> Result<(), Reject>
where
    S: Strategy,
    F: FnOnce(S::Value) -> Result<(), Reject>,
{
    f(strategy.generate(rng))
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a length specification for [`vec()`].
    pub trait SizeRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing vectors of element draws.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. See the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test seed derived from the test name.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for __b in stringify!($name).bytes() {
                    __seed = (__seed ^ __b as u64).wrapping_mul(0x100_0000_01b3);
                }
                let mut __rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
                let __strategy = ($($strat,)+);
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                while __accepted < __config.cases {
                    assert!(
                        __attempts < __max_attempts,
                        "proptest shim: too many rejected cases in {}",
                        stringify!($name)
                    );
                    __attempts += 1;
                    let __outcome = $crate::run_one(&__strategy, &mut __rng, |($($pat,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    });
                    if __outcome.is_ok() {
                        __accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Reject);
        }
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        use crate::rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = ((0usize..5), (5usize..9)).generate(&mut rng);
            assert!(a < 5 && (5..9).contains(&b));
            let xs = crate::collection::vec(0u64..4, 2..6).generate(&mut rng);
            assert!((2..6).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_and_assumes(n in 0usize..100, k in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
            prop_assert_eq!(k * n / k, n);
        }

        #[test]
        fn flat_map_composes(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0usize..n, n))) {
            prop_assert!(!v.is_empty());
            let n = v.len();
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }
}
