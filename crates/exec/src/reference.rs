//! The default backend: exactly the shared reference kernels.

use crate::Backend;

/// Executes every kernel with the reference loops in [`crate::kernels`] —
/// the same arithmetic, in the same order, as the pre-backend workspace.
/// Every trait default already delegates there, so the impl is empty; this
/// type is the living proof that [`Backend`]'s defaults *are* the reference
/// semantics.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceBackend;

impl Backend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }
}
