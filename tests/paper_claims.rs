//! Integration tests asserting the *directional* claims of every paper
//! experiment — the properties EXPERIMENTS.md reports.

use mega::core::{preprocess, revisit_lower_bound, traverse, MegaConfig, WindowPolicy};
use mega::datasets::{csl, zinc, DatasetSpec};
use mega::dist::{edge_cut_volume, hash_partition, path_partition_volume};
use mega::gpu_sim::{BatchTopology, DeviceConfig, EngineKind, GnnCostModel, KernelKind, ModelSpec};
use mega::graph::generate;
use mega::wl::{global_similarity, path_similarity};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn molecular_batch(count: usize) -> Vec<mega::graph::Graph> {
    let ds = zinc(&DatasetSpec {
        train: count,
        val: 1,
        test: 1,
        seed: 77,
    });
    ds.train.into_iter().map(|s| s.graph).collect()
}

fn costed(
    graphs: &[mega::graph::Graph],
    spec: ModelSpec,
    engine: EngineKind,
) -> mega::gpu_sim::EpochCost {
    let topo = match engine {
        EngineKind::Mega => {
            let schedules: Vec<_> = graphs
                .iter()
                .map(|g| preprocess(g, &MegaConfig::default()).unwrap())
                .collect();
            BatchTopology::from_graphs_with_schedules(graphs, &schedules)
        }
        EngineKind::DglBaseline => BatchTopology::from_graphs(graphs),
    };
    GnnCostModel::new(DeviceConfig::gtx_1080(), spec, engine).epoch_cost(&topo, 1)
}

/// Fig. 4: sgemm SM efficiency dominates the graph kernels.
#[test]
fn fig04_sgemm_efficiency_dominates() {
    let graphs = molecular_batch(64);
    let cost = costed(
        &graphs,
        ModelSpec::graph_transformer(128, 2),
        EngineKind::DglBaseline,
    );
    let r = &cost.report;
    let sgemm = r.kernel(KernelKind::Sgemm).unwrap().sm_efficiency;
    for k in [
        KernelKind::CubSort,
        KernelKind::DglGather,
        KernelKind::DglScatter,
    ] {
        let eff = r.kernel(k).unwrap().sm_efficiency;
        assert!(sgemm > eff, "{k}: sgemm {sgemm} vs {eff}");
    }
}

/// Fig. 5: GT spends a larger time share on graph operations than GCN.
#[test]
fn fig05_gt_more_graph_bound_than_gcn() {
    let graphs = molecular_batch(64);
    let gcn = costed(
        &graphs,
        ModelSpec::gated_gcn(128, 2),
        EngineKind::DglBaseline,
    );
    let gt = costed(
        &graphs,
        ModelSpec::graph_transformer(128, 2),
        EngineKind::DglBaseline,
    );
    assert!(gt.report.graph_op_time_share() > gcn.report.graph_op_time_share());
    assert!(gt.report.sgemm_time_share() < gcn.report.sgemm_time_share() + 0.15);
}

/// Fig. 6: graph kernels stall more than sgemm.
#[test]
fn fig06_graph_kernels_stall() {
    let graphs = molecular_batch(64);
    let cost = costed(
        &graphs,
        ModelSpec::graph_transformer(128, 2),
        EngineKind::DglBaseline,
    );
    let r = &cost.report;
    let sgemm_stall = r.kernel(KernelKind::Sgemm).unwrap().stall_pct;
    let gather_stall = r.kernel(KernelKind::DglGather).unwrap().stall_pct;
    assert!(
        gather_stall > sgemm_stall + 0.2,
        "gather {gather_stall} vs sgemm {sgemm_stall}"
    );
}

/// Fig. 8: 1-hop exactness; path beats global attention on sparse graphs.
#[test]
fn fig08_similarity_shape() {
    let mut rng = StdRng::seed_from_u64(8);
    let g = generate::erdos_renyi(64, 0.05, &mut rng).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    assert!((path_similarity(&g, &s, 1) - 1.0).abs() < 1e-12);
    for hops in 1..=2 {
        assert!(path_similarity(&g, &s, hops) > global_similarity(&g, hops));
    }
}

/// Fig. 9: Mega's aggregate SM efficiency higher, stalls lower, for both
/// models.
#[test]
fn fig09_mega_aggregates_better() {
    let graphs = molecular_batch(64);
    for spec in [
        ModelSpec::gated_gcn(128, 2),
        ModelSpec::graph_transformer(128, 2),
    ] {
        let dgl = costed(&graphs, spec.clone(), EngineKind::DglBaseline);
        let mega = costed(&graphs, spec, EngineKind::Mega);
        assert!(mega.report.aggregate_sm_efficiency() > dgl.report.aggregate_sm_efficiency());
        assert!(mega.report.aggregate_stall_pct() < dgl.report.aggregate_stall_pct());
    }
}

/// Fig. 10: Mega's epoch is faster and more sgemm-occupied; GT gains at
/// least as much as GCN.
#[test]
fn fig10_runtime_shape() {
    let graphs = molecular_batch(64);
    let mut speedups = Vec::new();
    for spec in [
        ModelSpec::gated_gcn(64, 2),
        ModelSpec::graph_transformer(64, 2),
    ] {
        let dgl = costed(&graphs, spec.clone(), EngineKind::DglBaseline);
        let mega = costed(&graphs, spec, EngineKind::Mega);
        assert!(mega.epoch_seconds < dgl.epoch_seconds);
        assert!(mega.report.sgemm_time_share() > dgl.report.sgemm_time_share());
        speedups.push(dgl.epoch_seconds / mega.epoch_seconds);
    }
    let (gcn_speedup, gt_speedup) = (speedups[0], speedups[1]);
    assert!(
        gt_speedup > gcn_speedup * 0.95,
        "gcn {gcn_speedup} vs gt {gt_speedup}"
    );
}

/// §III-B: revisits respect the paper's lower-bound formula direction —
/// larger windows need fewer revisits.
#[test]
fn window_bound_monotonicity() {
    let mut rng = StdRng::seed_from_u64(13);
    let g = generate::barabasi_albert(120, 3, &mut rng).unwrap();
    let mut prev_bound = usize::MAX;
    let mut prev_revisits = usize::MAX;
    for w in [1usize, 2, 4, 8] {
        let bound = revisit_lower_bound(&g.degrees(), w);
        let t = traverse(
            &g,
            &MegaConfig::default().with_window(WindowPolicy::Fixed(w)),
        )
        .unwrap();
        assert!(bound <= prev_bound);
        assert!(t.revisits <= prev_revisits.saturating_add(4), "window {w}");
        prev_bound = bound;
        prev_revisits = t.revisits;
    }
}

/// §IV-B6: O(k) communication for the path partition.
#[test]
fn dist_comm_is_linear_in_k() {
    let mut rng = StdRng::seed_from_u64(14);
    let g = generate::barabasi_albert(400, 3, &mut rng).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    for k in [2usize, 8, 32] {
        assert_eq!(path_partition_volume(&s, k).comm_pairs, k - 1);
    }
    let cut = edge_cut_volume(&g, &hash_partition(&g, 32), 32);
    assert!(cut.comm_pairs > 31);
}

/// CSL's identical-degree property survives batching into the cost model
/// (the Fig. 5 "CSL stays flat" observation needs it).
#[test]
fn csl_batches_are_uniform() {
    let ds = csl(&DatasetSpec::tiny(15));
    let sizes: Vec<usize> = ds.train.iter().map(|s| s.graph.node_count()).collect();
    assert!(sizes.iter().all(|&n| n == sizes[0]));
    let slots: Vec<usize> = ds.train.iter().map(|s| 2 * s.graph.edge_count()).collect();
    assert!(slots.iter().all(|&m| m == slots[0]));
}
