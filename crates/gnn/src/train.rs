//! Training loop with per-epoch metrics and simulated GPU wall clock.

use crate::batch::Batch;
use crate::config::{EngineChoice, GnnConfig};
use crate::cost;
use crate::metrics;
use crate::model::Gnn;
use crate::nn::Binder;
use mega_core::{AttentionSchedule, MegaConfig, Parallelism};
use mega_datasets::{Dataset, GraphSample, Task};
use mega_exec::{Backend, BufferPool, PackCache, ReferenceBackend};
use mega_tensor::{Adam, Optimizer, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Host wall-clock seconds of one epoch, split by training phase.
///
/// Captured via [`mega_obs::Stopwatch`] directly in the training loop
/// (always measured, independent of the global [`mega_obs`] enable flag,
/// whose span tree carries the same boundaries at finer grain).
/// `assemble` covers per-epoch batch rebuilding and is
/// zero unless shuffling forces a rebuild; `evaluate` is the validation
/// pass. Wall-clock values are machine-dependent and excluded from every
/// bit-determinism comparison, like [`EpochRecord::real_seconds`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Batch (re)assembly: shuffling and index-structure rebuilds.
    pub assemble: f64,
    /// Model forward passes over the epoch's training batches.
    pub forward: f64,
    /// Reverse-mode gradient passes.
    pub backward: f64,
    /// Gradient application: binder scatter, clipping, Adam step.
    pub optimizer: f64,
    /// Validation-split evaluation at the end of the epoch.
    pub evaluate: f64,
}

impl PhaseSeconds {
    /// Sum of all phase times.
    pub fn total(&self) -> f64 {
        self.assemble + self.forward + self.backward + self.optimizer + self.evaluate
    }
}

/// One epoch of the training history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (1-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation loss.
    pub val_loss: f64,
    /// Validation task metric (MAE for regression — lower is better;
    /// accuracy for classification — higher is better).
    pub val_metric: f64,
    /// Cumulative *simulated GPU* seconds at the end of this epoch
    /// (including MEGA's one-time preprocessing, charged up front).
    pub sim_seconds: f64,
    /// Cumulative host (real) seconds of the run.
    pub real_seconds: f64,
    /// Host wall-clock breakdown of this epoch by training phase.
    pub phases: PhaseSeconds,
}

/// The result of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Engine label ("DGL" / "Mega").
    pub engine: String,
    /// Model label ("GCN" / "GT").
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Per-epoch records.
    pub records: Vec<EpochRecord>,
    /// CPU seconds spent in MEGA preprocessing (0 for the baseline).
    pub preprocess_seconds: f64,
    /// Simulated seconds for one epoch.
    pub epoch_sim_seconds: f64,
    /// Held-out test loss after the final epoch.
    pub test_loss: f64,
    /// Held-out test metric after the final epoch (MAE or accuracy).
    pub test_metric: f64,
}

impl TrainingHistory {
    /// The best (minimum) validation loss reached.
    pub fn best_val_loss(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.val_loss)
            .fold(f64::INFINITY, f64::min)
    }

    /// The final validation metric, or `None` for an empty run (zero
    /// epochs recorded — e.g. `epochs == 0`).
    pub fn final_metric(&self) -> Option<f64> {
        self.records.last().map(|r| r.val_metric)
    }

    /// Simulated seconds needed to first reach `target` validation loss, if
    /// ever reached (the paper's convergence-time measure).
    pub fn sim_seconds_to_loss(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.val_loss <= target)
            .map(|r| r.sim_seconds)
    }
}

/// Trains a model on a dataset under one engine.
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Graphs per batch.
    pub batch_size: usize,
    /// Epochs to run (upper bound when early stopping is enabled).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-norm clip.
    pub grad_clip: f32,
    /// Engine selection.
    pub engine: EngineChoice,
    /// MEGA preprocessing configuration (used when `engine` is Mega).
    pub mega_config: MegaConfig,
    /// Reduce-on-plateau: halve the learning rate after this many epochs
    /// without validation-loss improvement (0 disables). The protocol of the
    /// benchmark the paper builds on (Dwivedi et al.).
    pub lr_patience: usize,
    /// Early stopping: end the run after this many epochs without
    /// validation-loss improvement (0 disables).
    pub early_stop_patience: usize,
    /// Reshuffle the sample-to-batch assignment every epoch with this seed
    /// (`None` keeps the fixed dataset order). Batches are rebuilt per epoch,
    /// which for the MEGA engine re-batches precomputed index structures —
    /// preprocessing itself is not repeated conceptually, but this costs CPU
    /// time in this implementation; benches keep it off.
    pub shuffle_seed: Option<u64>,
    /// Thread budget for CPU-side work: per-sample preprocessing, batch
    /// index construction, and the tape's matrix products. All parallel
    /// paths are bit-deterministic, so training histories are identical for
    /// every setting.
    pub parallelism: Parallelism,
    /// Kernel execution backend for every tape op. All backends are
    /// bit-compatible with [`ReferenceBackend`], so training histories are
    /// identical across backends too.
    pub backend: Arc<dyn Backend>,
    /// Run tapes through the planner: ops are deferred and fused at flush
    /// boundaries, and weight packs are cached across batches (invalidated
    /// at every optimizer step). Planned training is bit-identical to the
    /// unfused eager path on every backend; disable to use that path as the
    /// exactness oracle.
    pub plan: bool,
}

impl Trainer {
    /// A trainer with the defaults used across the benches.
    pub fn new(engine: EngineChoice) -> Self {
        Trainer {
            batch_size: 32,
            epochs: 10,
            lr: 5e-3,
            grad_clip: 5.0,
            engine,
            mega_config: MegaConfig::default(),
            lr_patience: 0,
            early_stop_patience: 0,
            shuffle_seed: None,
            parallelism: Parallelism::with_threads(1),
            backend: Arc::new(ReferenceBackend),
            plan: true,
        }
    }

    /// Enables or disables the tape planner (fusion + pack caching).
    /// Training histories are bit-identical either way; `false` selects the
    /// unfused eager path used as the planner's exactness oracle.
    pub fn with_plan(mut self, plan: bool) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the kernel execution backend (see `mega_exec::backend_by_name`).
    pub fn with_backend(mut self, backend: Arc<dyn Backend>) -> Self {
        self.backend = backend;
        self
    }

    /// Enables per-epoch batch shuffling.
    pub fn with_shuffle(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Enables reduce-on-plateau LR halving with the given patience.
    pub fn with_lr_patience(mut self, patience: usize) -> Self {
        self.lr_patience = patience;
        self
    }

    /// Enables early stopping with the given patience.
    pub fn with_early_stop(mut self, patience: usize) -> Self {
        self.early_stop_patience = patience;
        self
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Sets the MEGA preprocessing configuration.
    pub fn with_mega_config(mut self, cfg: MegaConfig) -> Self {
        self.mega_config = cfg;
        self
    }

    /// Sets the CPU thread budget (preprocessing, batching, tape matmuls).
    /// Results are bit-identical for every setting.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    fn preprocess_all(&self, samples: &[GraphSample]) -> Vec<AttentionSchedule> {
        crate::parallel::preprocess_samples(samples, &self.mega_config, &self.parallelism)
            .expect("preprocessing of a valid graph cannot fail")
    }

    fn build_batches(&self, samples: &[GraphSample]) -> Vec<Batch> {
        let chunks: Vec<&[GraphSample]> = samples.chunks(self.batch_size).collect();
        match self.engine {
            EngineChoice::Baseline => chunks.into_iter().map(Batch::baseline).collect(),
            EngineChoice::Mega => chunks
                .into_iter()
                .map(|c| {
                    let schedules = self.preprocess_all(c);
                    Batch::mega_with(c, &schedules, &self.parallelism)
                })
                .collect(),
        }
    }

    /// Runs training and returns the per-epoch history.
    pub fn run(&self, dataset: &Dataset, config: GnnConfig) -> TrainingHistory {
        let _train_span = mega_obs::span("train");
        mega_obs::counter_add("gnn.train.runs", 1);
        let start = mega_obs::Stopwatch::start();
        let task = dataset.task;

        // One-time preprocessing (CPU side, decoupled from training).
        let pre_start = mega_obs::Stopwatch::start();
        let (train_batches, val_batches) = {
            let _s = mega_obs::span("assemble");
            (
                self.build_batches(&dataset.train),
                self.build_batches(&dataset.val),
            )
        };
        let preprocess_seconds = if self.engine == EngineChoice::Mega {
            pre_start.elapsed().as_secs_f64()
        } else {
            0.0
        };

        // Simulated GPU epoch time from a representative batch.
        let rep = &dataset.train[..dataset.train.len().min(self.batch_size)];
        let rep_schedules = if self.engine == EngineChoice::Mega {
            Some(self.preprocess_all(rep))
        } else {
            None
        };
        let epoch_sim_seconds = cost::epoch_cost(
            &config,
            self.engine,
            rep,
            rep_schedules.as_deref(),
            train_batches.len(),
        )
        .epoch_seconds;

        let mut store = ParamStore::new();
        let model = Gnn::new(&mut store, config.clone());
        let mut opt = Adam::new(self.lr);
        let mut records = Vec::with_capacity(self.epochs);
        let mut sim_clock = preprocess_seconds;
        let mut best_val = f64::INFINITY;
        let mut since_best = 0usize;
        #[allow(unused_assignments)]
        let mut shuffled_storage: Vec<Batch> = Vec::new();

        let mut shuffle_rng = self.shuffle_seed.map(StdRng::seed_from_u64);
        let mut shuffled_samples = dataset.train.clone();
        // One pool for the whole run: tapes recycle node buffers batch to
        // batch instead of re-allocating.
        let pool = Arc::new(BufferPool::new());
        // One pack cache for the whole run: packed weight strips survive
        // across batches and epochs, and are invalidated at every optimizer
        // step (parameter values change, cached packs go stale).
        let pack_cache = Arc::new(PackCache::default());
        // Pack-accounting invariant: with the cache invalidated once per
        // optimizer step, every step packs each weight at most once per
        // orientation, so the per-step miss count is the same for every
        // step of the run. Calibrated on the first step, checked on later
        // ones via the `exec.pack.*` counters the cache maintains.
        let mut packs_per_step: Option<u64> = None;
        // Global step counter for the health monitors and the sentinel dump.
        let mut step = 0u64;
        for epoch in 1..=self.epochs {
            let _epoch_span = mega_obs::span("epoch");
            mega_obs::counter_add("gnn.train.epochs", 1);
            let mut phases = PhaseSeconds::default();
            // Optional per-epoch reshuffle of the sample order.
            let t_assemble = mega_obs::Stopwatch::start();
            let epoch_batches: &[Batch] = match shuffle_rng.as_mut() {
                Some(rng) if epoch > 1 => {
                    let _s = mega_obs::span("assemble");
                    shuffled_samples.shuffle(rng);
                    shuffled_storage = self.build_batches(&shuffled_samples);
                    &shuffled_storage
                }
                _ => &train_batches,
            };
            phases.assemble = t_assemble.elapsed().as_secs_f64();
            let mut loss_sum = 0.0f64;
            for batch in epoch_batches {
                mega_obs::counter_add("gnn.train.batches", 1);
                let mut tape = Tape::with_exec(self.backend.clone(), pool.clone());
                tape.set_parallelism(self.parallelism);
                let misses_before = pack_cache.misses();
                if self.plan {
                    tape.set_planning(true);
                    tape.set_pack_cache(pack_cache.clone());
                }
                let mut binder = Binder::new();
                let t_fwd = mega_obs::Stopwatch::start();
                let loss = {
                    let _s = mega_obs::span("forward");
                    let pred = model.forward(&mut tape, &mut binder, &store, batch);
                    model.loss(&mut tape, pred, batch, task)
                };
                phases.forward += t_fwd.elapsed().as_secs_f64();
                let batch_loss = tape.value(loss).at(0, 0) as f64;
                loss_sum += batch_loss;
                let t_bwd = mega_obs::Stopwatch::start();
                let grads = {
                    let _s = mega_obs::span("backward");
                    tape.backward(loss)
                };
                phases.backward += t_bwd.elapsed().as_secs_f64();
                let t_opt = mega_obs::Stopwatch::start();
                let grad_norm = {
                    let _s = mega_obs::span("optimizer");
                    binder.apply(&mut store, &grads);
                    let pre_clip = store.clip_grad_norm(self.grad_clip);
                    opt.step(&mut store);
                    pre_clip
                };
                phases.optimizer += t_opt.elapsed().as_secs_f64();
                if self.plan {
                    let packed = pack_cache.misses() - misses_before;
                    match packs_per_step {
                        None => packs_per_step = Some(packed),
                        Some(expected) => assert_eq!(
                            packed, expected,
                            "pack-cache invariant violated: step packed {packed} strips, \
                             earlier steps packed {expected} (each weight must pack exactly \
                             once per optimizer step)"
                        ),
                    }
                    // Parameters just changed: cached packs are stale.
                    pack_cache.invalidate();
                }
                step += 1;
                // NaN/Inf sentinel: always on (two float checks per batch).
                // A non-finite loss or gradient norm poisons every later
                // step, so fail fast with the full diagnostic picture while
                // the offending tape is still alive.
                if !batch_loss.is_finite() || !grad_norm.is_finite() {
                    Self::abort_nonfinite(epoch, step, batch_loss, grad_norm, &tape);
                }
                if mega_obs::enabled() {
                    mega_obs::record_value(
                        "gnn.health.loss_milli",
                        (batch_loss * 1e3).max(0.0) as u64,
                    );
                    mega_obs::record_value(
                        "gnn.health.grad_norm_milli",
                        (grad_norm as f64 * 1e3).max(0.0) as u64,
                    );
                    mega_obs::trace_counter("gnn.health.grad_norm", grad_norm as f64);
                }
            }
            let train_loss = loss_sum / epoch_batches.len().max(1) as f64;
            let t_eval = mega_obs::Stopwatch::start();
            let (val_loss, val_metric) = {
                let _s = mega_obs::span("evaluate");
                self.evaluate(&model, &store, &val_batches, task)
            };
            phases.evaluate = t_eval.elapsed().as_secs_f64();
            if mega_obs::enabled() {
                mega_obs::record_duration(
                    "gnn.train.epoch_ns",
                    std::time::Duration::from_secs_f64(phases.total()),
                );
            }
            sim_clock += epoch_sim_seconds;
            records.push(EpochRecord {
                epoch,
                train_loss,
                val_loss,
                val_metric,
                sim_seconds: sim_clock,
                real_seconds: start.elapsed().as_secs_f64(),
                phases,
            });
            // Plateau handling (the reference benchmark's protocol).
            if val_loss < best_val - 1e-6 {
                best_val = val_loss;
                since_best = 0;
            } else {
                since_best += 1;
                if self.lr_patience > 0 && since_best.is_multiple_of(self.lr_patience) {
                    let lr = opt.learning_rate() * 0.5;
                    opt.set_learning_rate(lr);
                }
                if self.early_stop_patience > 0 && since_best >= self.early_stop_patience {
                    break;
                }
            }
        }

        // Final held-out evaluation.
        let (test_loss, test_metric) = {
            let _s = mega_obs::span("evaluate");
            let test_batches = self.build_batches(&dataset.test);
            self.evaluate(&model, &store, &test_batches, task)
        };

        TrainingHistory {
            engine: self.engine.label().to_string(),
            model: config.kind.label().to_string(),
            dataset: dataset.name.clone(),
            records,
            preprocess_seconds,
            epoch_sim_seconds,
            test_loss,
            test_metric,
        }
    }

    /// Aborts training on a non-finite loss or gradient norm with a
    /// diagnostic dump: the offending tape op (where non-finiteness entered
    /// the forward pass), the epoch/step coordinates, the full metrics
    /// snapshot, and the flight-recorder ring of recent span events.
    ///
    /// Panicking (rather than returning an error) is deliberate: a poisoned
    /// parameter store has no recovery path mid-run, and the panic payload
    /// carries the dump to whatever harness drives training.
    fn abort_nonfinite(epoch: usize, step: u64, loss: f64, grad_norm: f32, tape: &Tape) -> ! {
        let offender = match tape.first_nonfinite() {
            Some((idx, kind)) => format!("node #{idx} ({kind})"),
            None => "not on the tape (entered through optimizer state)".to_string(),
        };
        panic!(
            "non-finite training signal at epoch {epoch} step {step}: \
             loss={loss}, pre-clip grad norm={grad_norm}\n\
             offending op: {offender}\n\
             metrics snapshot:\n{}\n{}",
            mega_obs::snapshot().to_json(false),
            mega_obs::render_flight_recorder(),
        );
    }

    /// Evaluates `(loss, metric)` over batches without updating parameters.
    pub fn evaluate(
        &self,
        model: &Gnn,
        store: &ParamStore,
        batches: &[Batch],
        task: Task,
    ) -> (f64, f64) {
        let mut loss_sum = 0.0f64;
        let mut metric_sum = 0.0f64;
        let mut graphs = 0usize;
        let pool = Arc::new(BufferPool::new());
        // Parameters are frozen during evaluation, so one cache packs each
        // weight once for all batches and is never invalidated.
        let pack_cache = Arc::new(PackCache::default());
        for batch in batches {
            let mut tape = Tape::with_exec(self.backend.clone(), pool.clone());
            tape.set_parallelism(self.parallelism);
            if self.plan {
                tape.set_planning(true);
                tape.set_pack_cache(pack_cache.clone());
            }
            let mut binder = Binder::new();
            let pred = model.forward(&mut tape, &mut binder, store, batch);
            let loss = model.loss(&mut tape, pred, batch, task);
            loss_sum += tape.value(loss).at(0, 0) as f64 * batch.n_graphs() as f64;
            let pv = tape.value(pred);
            let m = match task {
                Task::Regression => metrics::mae(pv, &batch.regression_targets()),
                Task::Classification { .. } => metrics::accuracy(pv, &batch.class_targets()),
            };
            metric_sum += m * batch.n_graphs() as f64;
            graphs += batch.n_graphs();
        }
        let g = graphs.max(1) as f64;
        (loss_sum / g, metric_sum / g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelKind;
    use mega_datasets::{cycles, zinc, DatasetSpec};

    fn tiny_config(ds: &Dataset, kind: ModelKind, out: usize) -> GnnConfig {
        GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, out)
            .with_hidden(16)
            .with_layers(2)
            .with_heads(2)
    }

    #[test]
    fn regression_training_reduces_loss() {
        let ds = zinc(&DatasetSpec::tiny(21));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(8)
            .with_batch_size(8)
            .run(&ds, cfg);
        let first = hist.records.first().unwrap().train_loss;
        let last = hist.records.last().unwrap().train_loss;
        assert!(last < first * 0.8, "loss did not drop: {first} -> {last}");
        assert_eq!(hist.records.len(), 8);
    }

    #[test]
    fn mega_training_matches_baseline_quality() {
        let ds = zinc(&DatasetSpec::tiny(22));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let base = Trainer::new(EngineChoice::Baseline)
            .with_epochs(6)
            .with_batch_size(8)
            .run(&ds, cfg.clone());
        let mega = Trainer::new(EngineChoice::Mega)
            .with_epochs(6)
            .with_batch_size(8)
            .run(&ds, cfg);
        // Same initialization and equivalent math: final losses comparable.
        let b = base.records.last().unwrap().train_loss;
        let m = mega.records.last().unwrap().train_loss;
        assert!(
            (b - m).abs() < 0.35 * b.max(m).max(0.1),
            "baseline {b} vs mega {m}"
        );
        // And the simulated clock runs faster for MEGA.
        assert!(mega.epoch_sim_seconds < base.epoch_sim_seconds);
    }

    #[test]
    fn classification_training_improves_accuracy() {
        let spec = DatasetSpec {
            train: 96,
            val: 16,
            test: 8,
            seed: 23,
        };
        let ds = cycles(&spec);
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 2);
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(12)
            .with_batch_size(8)
            .with_lr(5e-3)
            .run(&ds, cfg);
        let last = hist.records.last().unwrap();
        assert!(last.val_metric >= 0.6, "accuracy {}", last.val_metric);
        assert!(last.train_loss < hist.records[0].train_loss);
    }

    #[test]
    fn early_stopping_cuts_the_run() {
        let ds = zinc(&DatasetSpec::tiny(25));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        // Zero LR: validation loss cannot improve after epoch 1.
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(20)
            .with_batch_size(8)
            .with_lr(0.0)
            .with_early_stop(2)
            .run(&ds, cfg);
        assert!(hist.records.len() <= 4, "ran {} epochs", hist.records.len());
    }

    #[test]
    fn lr_patience_is_accepted() {
        let ds = zinc(&DatasetSpec::tiny(26));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(4)
            .with_batch_size(8)
            .with_lr_patience(1)
            .run(&ds, cfg);
        assert_eq!(hist.records.len(), 4);
        assert!(hist.records.iter().all(|r| r.train_loss.is_finite()));
    }

    #[test]
    fn shuffling_trains_and_differs_from_fixed_order() {
        let ds = zinc(&DatasetSpec::tiny(27));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let fixed = Trainer::new(EngineChoice::Baseline)
            .with_epochs(3)
            .with_batch_size(8)
            .run(&ds, cfg.clone());
        let shuffled = Trainer::new(EngineChoice::Baseline)
            .with_epochs(3)
            .with_batch_size(8)
            .with_shuffle(99)
            .run(&ds, cfg);
        assert!(shuffled.records.iter().all(|r| r.train_loss.is_finite()));
        // Epoch 1 is identical (shuffle starts at epoch 2); later epochs see
        // different batch compositions, so losses diverge.
        assert!((fixed.records[0].train_loss - shuffled.records[0].train_loss).abs() < 1e-9);
        assert!((fixed.records[2].train_loss - shuffled.records[2].train_loss).abs() > 1e-9);
    }

    #[test]
    fn test_split_is_evaluated() {
        let ds = zinc(&DatasetSpec::tiny(28));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(2)
            .with_batch_size(8)
            .run(&ds, cfg);
        assert!(hist.test_loss.is_finite());
        assert!(hist.test_metric.is_finite());
        // Regression metric is MAE, same scale as val metric.
        let last = hist.records.last().unwrap();
        assert!((hist.test_metric - last.val_metric).abs() < 1.0);
    }

    #[test]
    fn history_helpers() {
        let ds = zinc(&DatasetSpec::tiny(24));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        let hist = Trainer::new(EngineChoice::Baseline)
            .with_epochs(3)
            .with_batch_size(8)
            .run(&ds, cfg);
        assert!(hist.best_val_loss().is_finite());
        assert!(hist.final_metric().expect("non-empty run").is_finite());
        // Phase timings are captured and non-negative.
        for r in &hist.records {
            assert!(r.phases.total() >= 0.0);
            assert!(r.phases.forward > 0.0, "forward time should be nonzero");
        }
        let worst = hist.records.iter().map(|r| r.val_loss).fold(0.0, f64::max);
        assert!(hist.sim_seconds_to_loss(worst + 1.0).is_some());
        assert!(hist.sim_seconds_to_loss(-1.0).is_none());
        // Sim clock is monotone.
        for w in hist.records.windows(2) {
            assert!(w[1].sim_seconds > w[0].sim_seconds);
        }
    }

    #[test]
    fn nan_sentinel_aborts_with_diagnostic_dump() {
        let ds = zinc(&DatasetSpec::tiny(31));
        let cfg = tiny_config(&ds, ModelKind::GatedGcn, 1);
        // An infinite learning rate blows the parameters up after the first
        // optimizer step, so the second batch's forward pass goes non-finite
        // — the sentinel must abort with the full diagnostic dump. Run on a
        // scratch thread to capture the panic payload for inspection.
        let handle = std::thread::spawn(move || {
            Trainer::new(EngineChoice::Baseline)
                .with_epochs(3)
                .with_batch_size(8)
                .with_lr(f32::INFINITY)
                .run(&ds, cfg);
        });
        let err = handle.join().expect_err("training must abort, not finish");
        let msg = err
            .downcast_ref::<String>()
            .expect("sentinel panics with a formatted dump");
        assert!(msg.contains("non-finite training signal"), "dump: {msg}");
        assert!(msg.contains("epoch 1 step"), "dump names the step: {msg}");
        assert!(
            msg.contains("offending op: node #"),
            "dump names the op: {msg}"
        );
        assert!(msg.contains("metrics snapshot:"), "dump: {msg}");
        assert!(msg.contains("flight recorder"), "dump: {msg}");
    }

    #[test]
    fn planned_training_is_bit_identical_to_unplanned() {
        // The planner (fusion + pack caching) must not change a single bit
        // of the training history, on any backend, for either model family
        // (GatedGCN exercises the linear fusions, GT the norm fusions).
        let ds = zinc(&DatasetSpec::tiny(33));
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            let cfg = tiny_config(&ds, kind, 1);
            let oracle = Trainer::new(EngineChoice::Baseline)
                .with_epochs(3)
                .with_batch_size(8)
                .with_plan(false)
                .run(&ds, cfg.clone());
            for name in ["reference", "blocked", "simd", "profiled"] {
                let backend = mega_exec::backend_by_name(name).unwrap();
                let planned = Trainer::new(EngineChoice::Baseline)
                    .with_epochs(3)
                    .with_batch_size(8)
                    .with_backend(backend)
                    .run(&ds, cfg.clone());
                for (p, o) in planned.records.iter().zip(&oracle.records) {
                    assert_eq!(
                        p.train_loss.to_bits(),
                        o.train_loss.to_bits(),
                        "{kind:?}/{name} epoch {} train loss diverged: {} vs {}",
                        p.epoch,
                        p.train_loss,
                        o.train_loss
                    );
                    assert_eq!(p.val_loss.to_bits(), o.val_loss.to_bits());
                    assert_eq!(p.val_metric.to_bits(), o.val_metric.to_bits());
                }
                assert_eq!(planned.test_loss.to_bits(), oracle.test_loss.to_bits());
            }
        }
    }

    #[test]
    fn final_metric_is_none_for_empty_run() {
        let hist = TrainingHistory {
            engine: "DGL".to_string(),
            model: "GatedGCN".to_string(),
            dataset: "empty".to_string(),
            records: Vec::new(),
            preprocess_seconds: 0.0,
            epoch_sim_seconds: 0.0,
            test_loss: 0.0,
            test_metric: 0.0,
        };
        assert_eq!(hist.final_metric(), None);
        assert!(hist.best_val_loss().is_infinite());
        assert!(hist.sim_seconds_to_loss(0.0).is_none());
    }
}
