//! CYCLES-like classification dataset.
//!
//! The CYCLES benchmark (Loukas) asks whether a graph contains a cycle of a
//! designated length; graphs are unions of cycles and path segments, giving
//! Table II/III's statistics: ~49 nodes, ~44 edges, sparsity 0.036, constant
//! minimum degree (σ(d_min) = 0, the path endpoints) and a mixture of
//! degree-1/degree-2 nodes (μ(σ(d)) ≈ 0.47).
//!
//! Plain WL labeling cannot separate cycle lengths (every cycle is
//! 2-regular), so — as in the original benchmark — nodes carry random
//! symmetry-breaking features. The designated length here is **3**
//! (triangles), detectable within the 2–4 message-passing layers the
//! workspace models use; the original uses longer cycles with deeper models,
//! a depth-for-length tradeoff that does not affect the systems comparison.

use crate::sample::{Dataset, GraphSample, Target, Task};
use crate::spec::DatasetSpec;
use mega_graph::{GraphBuilder, GraphError};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Node-feature vocabulary (random symmetry-breaking ids).
pub const NODE_VOCAB: usize = 16;
/// The cycle length whose presence defines the positive class.
pub const TARGET_CYCLE_LEN: usize = 3;

/// Generates the CYCLES-like dataset: binary classification, class 1 iff the
/// graph contains a cycle of length [`TARGET_CYCLE_LEN`].
pub fn cycles(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let make = |count: usize, rng: &mut StdRng| -> Vec<GraphSample> {
        (0..count).map(|i| cycle_sample(i % 2 == 1, rng)).collect()
    };
    let train = make(spec.train, &mut rng);
    let val = make(spec.val, &mut rng);
    let test = make(spec.test, &mut rng);
    Dataset {
        name: "CYCLES".to_string(),
        task: Task::Classification { classes: 2 },
        node_vocab: NODE_VOCAB,
        edge_vocab: 1,
        train,
        val,
        test,
    }
}

fn cycle_sample(positive: bool, rng: &mut StdRng) -> GraphSample {
    let graph = build_components(positive, rng).expect("component builder produces valid graphs");
    let node_features: Vec<usize> = (0..graph.node_count())
        .map(|_| rng.gen_range(0..NODE_VOCAB))
        .collect();
    let edge_features = vec![0usize; graph.edge_count()];
    GraphSample {
        graph,
        node_features,
        edge_features,
        target: Target::Class(usize::from(positive)),
    }
}

/// Assembles ~49 nodes of disjoint cycles and paths. Positive graphs embed
/// exactly one cycle of the target length; negatives draw all cycle lengths
/// from the decoy pool.
fn build_components(positive: bool, rng: &mut StdRng) -> Result<mega_graph::Graph, GraphError> {
    const DECOY_LENS: [usize; 4] = [4, 5, 6, 8];
    let mut plan: Vec<(usize, bool)> = Vec::new(); // (length, is_cycle)
    let mut nodes = 0usize;
    // Cycles until ~34 nodes: positives draw every cycle as a target-length
    // cycle, negatives only decoy lengths — mirroring the original dataset's
    // "similar cycles ... while others do not" construction with a class
    // signal strong enough for shallow models.
    while nodes < 34 {
        let len = if positive {
            TARGET_CYCLE_LEN
        } else {
            DECOY_LENS[rng.gen_range(0..DECOY_LENS.len())]
        };
        plan.push((len, true));
        nodes += len;
    }
    // Paths until ~49 nodes (each path has >= 2 nodes so min degree is 1).
    while nodes < 49 {
        let len = rng.gen_range(2..=5).min(49 - nodes).max(2);
        plan.push((len, false));
        nodes += len;
    }
    let mut b = GraphBuilder::undirected(nodes);
    let mut base = 0usize;
    for (len, is_cycle) in plan {
        for i in 1..len {
            b.edge(base + i - 1, base + i)?;
        }
        if is_cycle {
            b.edge(base + len - 1, base)?;
        }
        base += len;
    }
    b.build()
}

/// Ground-truth check used by tests: does `g` contain a triangle?
pub fn has_triangle(g: &mega_graph::Graph) -> bool {
    for (a, b) in g.edges() {
        for &c in g.neighbors(a) {
            if c != b && g.contains_edge(b, c) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_triangle_presence() {
        let ds = cycles(&DatasetSpec::tiny(1));
        for s in ds.all_samples() {
            assert_eq!(
                s.target.class() == 1,
                has_triangle(&s.graph),
                "label does not match structure"
            );
        }
    }

    #[test]
    fn statistics_match_table_ii() {
        let ds = cycles(&DatasetSpec::small(2));
        assert!(ds.validate());
        let st = ds.stats(64);
        assert!(
            (st.mean_nodes - 49.0).abs() < 3.0,
            "nodes {}",
            st.mean_nodes
        );
        assert!(
            (st.mean_sparsity - 0.036).abs() < 0.01,
            "sparsity {}",
            st.mean_sparsity
        );
        // Table III: constant min degree across graphs.
        assert!(st.std_min_degree.abs() < 1e-9);
        // Degree mixture of 1s and 2s.
        assert!(st.mean_degree_std > 0.2 && st.mean_degree_std < 0.7);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = cycles(&DatasetSpec::tiny(3));
        let pos = ds.train.iter().filter(|s| s.target.class() == 1).count();
        assert_eq!(pos, ds.train.len() / 2);
    }

    #[test]
    fn has_triangle_detector_is_correct() {
        let tri = GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2), (2, 0)])
            .unwrap()
            .build()
            .unwrap();
        assert!(has_triangle(&tri));
        let square = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .unwrap()
            .build()
            .unwrap();
        assert!(!has_triangle(&square));
    }
}
