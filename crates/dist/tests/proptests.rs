//! Property-based tests for partitioning, communication accounting, and the
//! distributed executor's segment/halo geometry.

use mega_core::{preprocess, ChunkPlan, MegaConfig};
use mega_dist::{
    bfs_partition, edge_cut_volume, epoch_scaling, hash_partition, path_partition_volume,
    path_segments, run_serial, BandJob, ClusterConfig, DistExecutor, SegmentPlan, ThreadExecutor,
};
use mega_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..80).prop_map(move |pairs| {
            let mut b = GraphBuilder::undirected(n);
            b.dedup(true);
            for v in 1..n {
                b.edge(v - 1, v).unwrap();
            }
            for (a, c) in pairs {
                b.edge(a, c).unwrap();
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioners produce valid, total assignments.
    #[test]
    fn partitions_are_total(g in arb_graph(), k in 1usize..8) {
        for parts in [hash_partition(&g, k), bfs_partition(&g, k)] {
            prop_assert_eq!(parts.len(), g.node_count());
            prop_assert!(parts.iter().all(|&p| p < k));
        }
    }

    /// Edge-cut volume counts exactly two rows per cut edge and pairs are
    /// bounded by k(k-1)/2.
    #[test]
    fn edge_cut_accounting(g in arb_graph(), k in 1usize..8) {
        let parts = hash_partition(&g, k);
        let c = edge_cut_volume(&g, &parts, k);
        let cut_edges = g.edges().filter(|&(a, b)| parts[a] != parts[b]).count();
        prop_assert_eq!(c.volume_rows, 2 * cut_edges);
        prop_assert!(c.comm_pairs <= k * k.saturating_sub(1) / 2);
        prop_assert_eq!(c.replica_rows, 0);
    }

    /// Path segments are contiguous, total, and yield exactly
    /// min(k, path_len) - 1 ... communicating pairs <= k - 1.
    #[test]
    fn path_partition_chain(g in arb_graph(), k in 1usize..8) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let segs = path_segments(&s, k);
        prop_assert_eq!(segs.len(), s.path().len());
        for w in segs.windows(2) {
            prop_assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        let p = path_partition_volume(&s, k);
        prop_assert!(p.comm_pairs <= k.saturating_sub(1));
        prop_assert!(p.volume_rows >= p.replica_rows);
    }

    /// Scaling predictions are physical: positive times, speedup ≤ k, and
    /// communication grows with volume.
    #[test]
    fn scaling_is_physical(g in arb_graph(), k in 1usize..8) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let stats = path_partition_volume(&s, k);
        let point = epoch_scaling(1.0, &stats, 10, 32, &ClusterConfig::ten_gbe());
        prop_assert!(point.total_seconds > 0.0);
        prop_assert!(point.speedup <= k as f64 + 1e-9);
        prop_assert!((point.compute_seconds + point.comm_seconds - point.total_seconds).abs() < 1e-12);
    }

    /// The segment partition reconstructs the single-process `ChunkPlan`'s
    /// band windows exactly: for random (len, window, workers) triples, the
    /// segments are byte-for-byte the chunks `ChunkPlan::build` produces for
    /// the same quotient, and every halo window is the ±ω read extent.
    #[test]
    fn segment_plan_reconstructs_chunk_plan_windows(
        len in 0usize..400,
        window in 1usize..16,
        workers in 1usize..12,
    ) {
        let plan = SegmentPlan::build(len, window, workers);
        let segs = plan.segments();
        // Segments partition the path in order.
        let mut cursor = 0usize;
        for seg in segs {
            prop_assert_eq!(seg.start, cursor);
            cursor = seg.end;
            // The halo geometry is exactly the chunked engine's read extent.
            prop_assert_eq!(seg.read_lo, seg.start.saturating_sub(window));
            prop_assert_eq!(seg.read_hi, (seg.end + window).min(len));
        }
        prop_assert_eq!(cursor, len);
        // The same chunk quotient through `ChunkPlan::build` yields the
        // identical segment list — the distributed plan *is* the
        // single-process plan, worker-count included.
        if plan.workers() > 1 {
            let chunk_size = segs[0].owned_len();
            let cp = ChunkPlan::build(len, window, chunk_size);
            prop_assert_eq!(segs, cp.chunks());
        }
        // Adjacent-only halos: every read extent is covered by the segment
        // plus its immediate neighbors, so the chain exchange suffices.
        for (w, seg) in segs.iter().enumerate() {
            if w > 0 {
                prop_assert!(seg.read_lo >= segs[w - 1].start);
            }
            if w + 1 < segs.len() {
                prop_assert!(seg.read_hi <= segs[w + 1].end);
            }
        }
    }

    /// On a real schedule, the segment plan's assignment is exactly
    /// `path_segments`' quotient assignment (when no worker clamping is
    /// needed — the clamp only engages when a segment would be thinner
    /// than the band).
    #[test]
    fn segment_assignment_matches_path_segments(g in arb_graph(), k in 1usize..8) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let band = s.band();
        prop_assume!(k == 1 || band.len().div_ceil(k) >= band.window().max(1));
        let plan = SegmentPlan::for_schedule(&s, k);
        prop_assert_eq!(plan.assignment(), path_segments(&s, k));
    }

    /// Distributed execution through the halo protocol is bit-identical to
    /// the serial oracle on random graphs, for every worker count.
    #[test]
    fn halo_exchange_matches_serial_bits(g in arb_graph(), workers in 1usize..6, seed in 0u64..1000) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let band = s.band();
        let edges = s.working_graph().edge_count();
        let dim = 3usize;
        // Cheap deterministic pseudo-inputs; the kernels do not care about
        // the distribution, only the bits.
        let mix = |i: usize| {
            let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed);
            ((h >> 32) as f32 / u32::MAX as f32) - 0.5
        };
        let x0: Vec<f32> = (0..band.len() * dim).map(mix).collect();
        let weights: Vec<f32> = (0..edges).map(|e| mix(e + band.len() * dim)).collect();
        let job = BandJob {
            band,
            x0: &x0,
            dim,
            weights: &weights,
            edge_count: edges,
            steps: 3,
            damping: 0.75,
        };
        let oracle = run_serial(&job);
        let run = ThreadExecutor::new(workers).run(&job);
        let ob: Vec<u32> = oracle.x.iter().map(|v| v.to_bits()).collect();
        let rb: Vec<u32> = run.x.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(ob, rb);
        let odw: Vec<u32> = oracle.dw.iter().map(|v| v.to_bits()).collect();
        let rdw: Vec<u32> = run.dw.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(odw, rdw);
    }
}
