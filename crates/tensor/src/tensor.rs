//! Row-major 2-D `f32` tensor and its raw (non-differentiable) kernels.

use std::fmt;

/// A dense row-major matrix of `f32`.
///
/// Vectors are represented as `1 × c` or `r × 1` matrices. All binary ops
/// panic on shape mismatch — shape errors in this workspace are programmer
/// errors, not recoverable conditions.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// An `rows × cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// An `rows × cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Builds a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Tensor {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, yielding its flat row-major buffer (so the
    /// allocation can be recycled, e.g. via `mega_exec::BufferPool`).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Scales every element by `k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|a| a * k)
    }

    /// Applies `f` to every element.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Combines two same-shape tensors elementwise.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dims {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        mega_exec::kernels::matmul(&self.data, &other.data, n, k, m, &mut out);
        Tensor {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// Matrix product computed under the thread budget of `par`.
    ///
    /// Delegates to the shared reference kernel in `mega-exec`: output rows
    /// are split into contiguous chunks, one per worker, and each row is
    /// produced by the exact scalar kernel of [`Tensor::matmul`] — chunks
    /// never share an output row, so the result is bit-identical to the
    /// serial product for every thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_with(&self, other: &Tensor, par: &mega_core::Parallelism) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dims {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        mega_exec::kernels::matmul_par(&self.data, &other.data, n, k, m, par, &mut out);
        Tensor {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Gathers rows: `out[i] = self[index[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather_rows(&self, index: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(index.len(), self.cols);
        for (i, &src) in index.iter().enumerate() {
            assert!(src < self.rows, "gather index {src} out of range");
            out.row_mut(i).copy_from_slice(self.row(src));
        }
        out
    }

    /// Scatter-add rows: `out[index[i]] += self[i]`, with `out` having
    /// `out_rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= out_rows`.
    pub fn scatter_add_rows(&self, index: &[usize], out_rows: usize) -> Tensor {
        assert_eq!(index.len(), self.rows, "index length must equal row count");
        let mut out = Tensor::zeros(out_rows, self.cols);
        for (i, &dst) in index.iter().enumerate() {
            assert!(dst < out_rows, "scatter index {dst} out of range");
            let src = self.row(i);
            let d = out.row_mut(dst);
            for (o, &s) in d.iter_mut().zip(src) {
                *o += s;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|a| !a.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matmul_bit_identical_to_serial() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::from_vec(
            37,
            64,
            (0..37 * 64).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let b = Tensor::from_vec(
            64,
            29,
            (0..64 * 29).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        let serial = a.matmul(&b);
        for threads in [1, 2, 4, 8] {
            let par = mega_core::Parallelism::pinned(threads);
            let p = a.matmul_with(&b, &par);
            assert_eq!(p.shape(), serial.shape());
            for (x, y) in p.as_slice().iter().zip(serial.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.at(1, 0), 3.0);
        assert_eq!(t.row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_validates_length() {
        Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(1, 2);
        let b = Tensor::zeros(2, 1);
        let _ = a.add(&b);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn gather_and_scatter_are_adjoint_on_sums() {
        let x = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let idx = [2usize, 0, 2];
        let g = x.gather_rows(&idx);
        assert_eq!(g.as_slice(), &[3.0, 1.0, 3.0]);
        let s = g.scatter_add_rows(&idx, 3);
        assert_eq!(s.as_slice(), &[1.0, 0.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_bad_index() {
        Tensor::zeros(2, 1).gather_rows(&[5]);
    }

    #[test]
    fn norm_and_finite_checks() {
        let a = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let b = Tensor::from_rows(&[&[f32::NAN]]);
        assert!(b.has_non_finite());
    }
}
