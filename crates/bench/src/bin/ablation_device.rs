//! Ablation: device sensitivity of the Mega-vs-DGL speedup.
//!
//! The paper's testbed is a GTX 1080; this sweep re-runs the Fig. 10 epoch
//! comparison on a low-end (GTX 1050-class) and a modern (RTX 3080-class)
//! device model. More bandwidth and cache shrink the scattered-access
//! penalty but do not erase it — MEGA's advantage is architectural, not an
//! artifact of one card.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{preprocess, MegaConfig};
use mega_datasets::{zinc, DatasetSpec};
use mega_gpu_sim::{BatchTopology, DeviceConfig, EngineKind, GnnCostModel, ModelSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    model: String,
    dgl_ms: f64,
    mega_ms: f64,
    speedup: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let ds = zinc(&DatasetSpec {
        train: 64,
        val: 1,
        test: 1,
        seed: 19,
    });
    let graphs: Vec<_> = ds.train.iter().map(|s| s.graph.clone()).collect();
    let schedules: Vec<_> = graphs
        .iter()
        .map(|g| preprocess(g, &MegaConfig::default()).expect("valid graph"))
        .collect();
    let base_topo = BatchTopology::from_graphs(&graphs);
    let mega_topo = BatchTopology::from_graphs_with_schedules(&graphs, &schedules);

    let devices = [
        DeviceConfig::gtx_1050(),
        DeviceConfig::gtx_1080(),
        DeviceConfig::rtx_3080(),
    ];
    let specs = [
        ModelSpec::gated_gcn(64, 2),
        ModelSpec::graph_transformer(64, 2),
    ];

    let mut table = TableWriter::new(&["device", "model", "DGL(ms)", "Mega(ms)", "speedup"]);
    let mut rows = Vec::new();
    for dev in &devices {
        for spec in &specs {
            let dgl = GnnCostModel::new(dev.clone(), spec.clone(), EngineKind::DglBaseline)
                .epoch_cost(&base_topo, 1);
            let mega = GnnCostModel::new(dev.clone(), spec.clone(), EngineKind::Mega)
                .epoch_cost(&mega_topo, 1);
            let speedup = dgl.epoch_seconds / mega.epoch_seconds;
            table.row(&[
                dev.name.clone(),
                spec.name.clone(),
                fmt(dgl.epoch_seconds * 1e3, 3),
                fmt(mega.epoch_seconds * 1e3, 3),
                format!("{speedup:.2}x"),
            ]);
            rows.push(Row {
                device: dev.name.clone(),
                model: spec.name.clone(),
                dgl_ms: dgl.epoch_seconds * 1e3,
                mega_ms: mega.epoch_seconds * 1e3,
                speedup,
            });
        }
    }
    mega_obs::data!("Ablation — device sensitivity (ZINC batch 64, hidden 64)\n");
    table.print();
    mega_obs::data!(
        "\nExpected: the speedup persists across three GPU generations; the low-end part\n\
         (least latency-hiding) benefits most, the bandwidth-rich part least."
    );
    save_json("ablation_device", &rows);
}
