//! The central [`Graph`] type.

use crate::coo::EdgeList;
use crate::csr::Csr;
use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Node identifier. Nodes of a graph with `n` nodes are `0..n`.
pub type NodeId = usize;

/// Whether a graph's edges are undirected or directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Each stored edge `(a, b)` connects both `a -> b` and `b -> a`.
    Undirected,
    /// Each stored edge `(a, b)` connects only `a -> b`.
    Directed,
}

/// A finite graph backed by an edge list and a CSR adjacency index.
///
/// `Graph` is the input type consumed by the MEGA traversal, the WL test, the
/// GNN engines and the GPU simulator workloads. It is immutable after
/// construction; use [`crate::GraphBuilder`] to assemble one.
///
/// # Example
///
/// ```
/// use mega_graph::{Graph, GraphBuilder};
///
/// # fn main() -> Result<(), mega_graph::GraphError> {
/// let g = GraphBuilder::undirected(5)
///     .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?
///     .build()?;
/// assert_eq!(g.degree(2), 2);
/// assert!(g.contains_edge(4, 0));
/// assert!((g.sparsity() - 0.5).abs() < 1e-9); // 5 edges / C(5,2)=10
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    direction: Direction,
    edges: EdgeList,
    csr: Csr,
}

impl Graph {
    /// Builds a graph directly from an edge list.
    ///
    /// Duplicate edges and self-loops are rejected: MEGA's traversal semantics
    /// (unvisited-neighbor bookkeeping) assume a simple graph, matching the
    /// paper's molecular benchmarks.
    ///
    /// # Errors
    ///
    /// * [`GraphError::Empty`] if `edges.node_count() == 0`.
    /// * [`GraphError::SelfLoop`] on any `(v, v)` pair.
    /// * [`GraphError::DuplicateEdge`] on repeated pairs (orientation-blind
    ///   for undirected graphs).
    pub fn from_edge_list(edges: EdgeList, direction: Direction) -> Result<Self, GraphError> {
        if edges.node_count() == 0 {
            return Err(GraphError::Empty);
        }
        // mega-lint: allow(unordered-collection, reason = "membership test only; never iterated")
        let mut seen = std::collections::HashSet::with_capacity(edges.len());
        for &(s, d) in edges.pairs() {
            if s == d {
                return Err(GraphError::SelfLoop { node: s });
            }
            let key = match direction {
                Direction::Undirected => (s.min(d), s.max(d)),
                Direction::Directed => (s, d),
            };
            if !seen.insert(key) {
                return Err(GraphError::DuplicateEdge { src: s, dst: d });
            }
        }
        let csr = Csr::from_edge_list(&edges, direction == Direction::Undirected);
        Ok(Graph {
            direction,
            edges,
            csr,
        })
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.edges.node_count()
    }

    /// Number of stored edges `m` (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The graph's edge direction mode.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Whether this graph is undirected.
    pub fn is_undirected(&self) -> bool {
        self.direction == Direction::Undirected
    }

    /// The underlying coordinate-format edge list.
    pub fn edge_list(&self) -> &EdgeList {
        &self.edges
    }

    /// The CSR adjacency index.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// Neighbors of `v`, sorted by id. For directed graphs these are the
    /// out-neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.csr.neighbors(v)
    }

    /// Degree of `v` (out-degree for directed graphs).
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.csr.degree(v)
    }

    /// Whether an edge `a -> b` exists (in either direction for undirected
    /// graphs).
    ///
    /// # Panics
    ///
    /// Panics if `a >= node_count()`.
    pub fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.csr.contains_edge(a, b)
    }

    /// Degree sequence, indexed by node id.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.node_count()).map(|v| self.degree(v)).collect()
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        self.csr.slot_count() as f64 / self.node_count() as f64
    }

    /// Maximum degree, or 0 for an edgeless graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Sparsity as defined by the paper (§IV-B1): the ratio of actual edges to
    /// the edges of the fully connected graph on the same nodes.
    ///
    /// For an undirected graph that denominator is `n(n-1)/2`; for a directed
    /// graph `n(n-1)`. Returns 0 for graphs with fewer than 2 nodes.
    pub fn sparsity(&self) -> f64 {
        let n = self.node_count() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let full = match self.direction {
            Direction::Undirected => n * (n - 1.0) / 2.0,
            Direction::Directed => n * (n - 1.0),
        };
        self.edge_count() as f64 / full
    }

    /// Iterates over stored edges as `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let e = EdgeList::from_pairs(4, vec![(0, 1), (1, 2), (2, 3)]).unwrap();
        Graph::from_edge_list(e, Direction::Undirected).unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = path4();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert!(g.is_undirected());
        assert_eq!(g.degrees(), vec![1, 2, 2, 1]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let e = EdgeList::from_pairs(2, vec![(0, 0)]).unwrap();
        assert_eq!(
            Graph::from_edge_list(e, Direction::Undirected),
            Err(GraphError::SelfLoop { node: 0 })
        );
        let e = EdgeList::from_pairs(2, vec![(0, 1), (1, 0)]).unwrap();
        assert_eq!(
            Graph::from_edge_list(e, Direction::Undirected),
            Err(GraphError::DuplicateEdge { src: 1, dst: 0 })
        );
        // Directed graphs allow the reverse orientation as a distinct edge.
        let e = EdgeList::from_pairs(2, vec![(0, 1), (1, 0)]).unwrap();
        assert!(Graph::from_edge_list(e, Direction::Directed).is_ok());
    }

    #[test]
    fn rejects_empty() {
        let e = EdgeList::new(0);
        assert_eq!(
            Graph::from_edge_list(e, Direction::Undirected),
            Err(GraphError::Empty)
        );
    }

    #[test]
    fn sparsity_of_complete_graph_is_one() {
        let mut pairs = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                pairs.push((a, b));
            }
        }
        let e = EdgeList::from_pairs(5, pairs).unwrap();
        let g = Graph::from_edge_list(e, Direction::Undirected).unwrap();
        assert!((g.sparsity() - 1.0).abs() < 1e-12);
    }
}
