// `unsafe-scope` fixture: a documented unsafe site, linted at two paths.
pub fn peek(p: *const f32) -> f32 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}
