//! Fixture regression tests for the lint rules.
//!
//! Each fixture under `tests/fixtures/` seeds violations at known lines;
//! these tests assert every rule fires exactly there (and nowhere else),
//! that path scoping flips the verdict where it should, that suppression
//! pragmas silence precisely their target, and — the self-test that makes
//! `cargo test` a lint gate too — that the workspace itself is clean.

use mega_analysis::{analyze_sources, audit, lint_source, lint_workspace, Analysis, Finding, Rule};
use std::path::Path;

const NO_FMA: &str = include_str!("fixtures/no_fma.rs");
const FLOAT_REASSOC: &str = include_str!("fixtures/float_reassoc.rs");
const UNSAFE_SCOPE: &str = include_str!("fixtures/unsafe_scope.rs");
const UNDOCUMENTED_UNSAFE: &str = include_str!("fixtures/undocumented_unsafe.rs");
const OBS_ROUTING: &str = include_str!("fixtures/obs_routing.rs");
const UNORDERED: &str = include_str!("fixtures/unordered_collection.rs");
const PRAGMAS: &str = include_str!("fixtures/pragmas.rs");
const FUSION_SCOPE: &str = include_str!("fixtures/fusion_scope.rs");
const BAD_PRAGMA: &str = include_str!("fixtures/bad_pragma.rs");
const DETERMINISM_TAINT: &str = include_str!("fixtures/determinism_taint.rs");
const UNSAFE_REACH: &str = include_str!("fixtures/unsafe_reach.rs");
const PANIC_SURFACE: &str = include_str!("fixtures/panic_surface.rs");
const SPAN_COVERAGE: &str = include_str!("fixtures/span_coverage.rs");
const STALE_PRAGMA: &str = include_str!("fixtures/stale_pragma.rs");

/// [`analyze_sources`] over `(path, text)` pairs scoped at their own path,
/// with no unsafe-reach audit entries and no ratchet.
fn analyze(files: &[(&str, &str)]) -> Analysis {
    let triples: Vec<(String, String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), p.to_string(), t.to_string()))
        .collect();
    analyze_sources(&triples, "", "")
}

/// The seeded lines at which `rule` fired, in order.
fn lines(findings: &[Finding], rule: Rule) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn no_fma_fires_on_each_seeded_line_only() {
    let findings = lint_source("crates/gnn/src/layer.rs", NO_FMA);
    assert_eq!(lines(&findings, Rule::NoFma), [5, 9, 10, 11]);
    assert_eq!(findings.len(), 4, "comment/string mentions must not fire");
}

#[test]
fn float_reassoc_respects_the_kernels_allowlist() {
    let inside = lint_source("crates/exec/src/window.rs", FLOAT_REASSOC);
    assert_eq!(lines(&inside, Rule::FloatReassoc), [3, 7]);
    assert_eq!(inside.len(), 2);
    // At the kernels path the folds are allowlisted — but kernels.rs is the
    // hot surface, so its span-less pub fns trip the coverage audit instead.
    let at_kernels = lint_source("crates/exec/src/kernels.rs", FLOAT_REASSOC);
    assert!(lines(&at_kernels, Rule::FloatReassoc).is_empty());
    assert_eq!(lines(&at_kernels, Rule::SpanCoverage), [2, 6]);
    assert!(lint_source("crates/gnn/src/nn.rs", FLOAT_REASSOC).is_empty());
}

#[test]
fn unsafe_scope_exempts_only_the_simd_backend() {
    let away = lint_source("crates/core/src/peek.rs", UNSAFE_SCOPE);
    assert_eq!(lines(&away, Rule::UnsafeScope), [4]);
    // The graph audit fires alongside the token rule: `pub fn peek`
    // reaches the unsafe block and is not in the (empty) inventory.
    assert_eq!(lines(&away, Rule::UnsafeReach), [2]);
    assert_eq!(away.len(), 2, "the SAFETY comment covers the site");
    let home = lint_source("crates/exec/src/simd.rs", UNSAFE_SCOPE);
    assert!(lines(&home, Rule::UnsafeScope).is_empty());
    assert_eq!(
        lines(&home, Rule::UnsafeReach),
        [2],
        "scope exemption \u{2260} audit exemption"
    );
}

#[test]
fn undocumented_unsafe_fires_on_the_bare_site_only() {
    let findings = lint_source("crates/exec/src/simd.rs", UNDOCUMENTED_UNSAFE);
    assert_eq!(lines(&findings, Rule::UndocumentedUnsafe), [8]);
    assert_eq!(lines(&findings, Rule::UnsafeReach), [2, 7]);
    assert_eq!(findings.len(), 3);
}

#[test]
fn obs_routing_exempts_obs_tests_and_examples() {
    let inside = lint_source("crates/gnn/src/debug.rs", OBS_ROUTING);
    assert_eq!(lines(&inside, Rule::ObsRouting), [3, 4, 5]);
    assert!(lint_source("crates/obs/src/dump.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("crates/gnn/tests/debug.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("examples/quickstart.rs", OBS_ROUTING).is_empty());
    assert!(lint_source("crates/bench/src/bin/timing.rs", OBS_ROUTING).is_empty());
}

#[test]
fn unordered_collection_fires_in_result_affecting_crates_only() {
    let inside = lint_source("crates/core/src/cache.rs", UNORDERED);
    assert_eq!(lines(&inside, Rule::UnorderedCollection), [2, 3, 5, 5, 7]);
    // The distributed crate folds gradients and halo rows in a fixed order,
    // so it stays pinned inside the order-sensitive scope.
    let dist = lint_source("crates/dist/src/train.rs", UNORDERED);
    assert_eq!(lines(&dist, Rule::UnorderedCollection), [2, 3, 5, 5, 7]);
    assert!(lint_source("crates/obs/src/cache.rs", UNORDERED).is_empty());
    assert!(lint_source("crates/core/tests/cache.rs", UNORDERED).is_empty());
}

#[test]
fn fusion_scope_fires_outside_the_audited_surface_only() {
    let inside = lint_source("crates/gnn/src/layers.rs", FUSION_SCOPE);
    assert_eq!(lines(&inside, Rule::FusionScope), [3, 6, 11]);
    assert_eq!(
        inside.len(),
        3,
        "call sites, comments, and the pragma-covered fn must not fire: {inside:?}"
    );
    // The audited fusion surface is exempt: kernels/backends, the tape
    // planner files, the GPU simulator — and tests anywhere.
    for home in [
        "crates/exec/src/kernels.rs",
        "crates/tensor/src/tape.rs",
        "crates/tensor/src/plan.rs",
        "crates/gpu-sim/src/profiler.rs",
        "crates/exec/tests/scaling.rs",
    ] {
        assert!(
            lint_source(home, FUSION_SCOPE)
                .iter()
                .all(|f| f.rule != Rule::FusionScope),
            "{home} must be exempt"
        );
    }
}

#[test]
fn pragmas_suppress_exactly_their_target_line() {
    let findings = lint_source("crates/core/src/cache.rs", PRAGMAS);
    assert_eq!(lines(&findings, Rule::UnorderedCollection), [8, 9, 10]);
    assert!(lines(&findings, Rule::BadPragma).is_empty());
    assert_eq!(
        findings.len(),
        3,
        "both pragma forms must silence their site"
    );
}

#[test]
fn malformed_pragmas_fire_and_do_not_suppress() {
    let findings = lint_source("crates/core/src/cache.rs", BAD_PRAGMA);
    assert_eq!(lines(&findings, Rule::BadPragma), [2, 3, 4]);
    assert_eq!(findings.len(), 3);
}

// ---------------------------------------------------------------------------
// Graph rules (determinism taint, reachability audits, span coverage,
// stale pragmas) — fixture tests with exact-line assertions.
// ---------------------------------------------------------------------------

#[test]
fn determinism_taint_fires_at_the_source_line_in_result_affecting_code() {
    let findings = lint_source("crates/core/src/sched.rs", DETERMINISM_TAINT);
    // `width` holds the source (line 3); `plan` calls it but stays silent —
    // the taint entered result-affecting code at `width`, one actionable
    // site per chain. `quiet_clock`'s source is dropped by its pragma.
    assert_eq!(lines(&findings, Rule::DeterminismTaint), [3]);
    assert!(findings[0].message.contains("available_parallelism"));
    assert!(
        lines(&findings, Rule::StalePragma).is_empty(),
        "the source-line pragma counts as used: {findings:?}"
    );
}

#[test]
fn determinism_taint_crosses_files_and_stops_at_boundary_pragmas() {
    let bench =
        "pub fn ticks() -> u64 {\n    std::time::Instant::now().elapsed().as_nanos() as u64\n}\n";
    let core = "pub fn jitter(n: u64) -> u64 {\n    n ^ ticks()\n}\n";
    let a = analyze(&[
        ("crates/bench/src/clock.rs", bench),
        ("crates/core/src/sched.rs", core),
    ]);
    // The source lives in crates/bench (not result-affecting, so silent
    // there); the finding fires where taint crosses into crates/core.
    let taint: Vec<&Finding> = a
        .findings
        .iter()
        .filter(|f| f.rule == Rule::DeterminismTaint)
        .collect();
    assert_eq!(taint.len(), 1, "{:?}", a.findings);
    assert_eq!(
        (taint[0].file.as_str(), taint[0].line),
        ("crates/core/src/sched.rs", 1)
    );
    assert!(
        taint[0].message.contains("jitter → ticks"),
        "{}",
        taint[0].message
    );
    assert!(
        taint[0].message.contains("Instant::now"),
        "{}",
        taint[0].message
    );

    // A boundary pragma on the crossing fn intercepts the taint — and is
    // therefore used, not stale.
    let bounded = "// mega-lint: allow(determinism-taint, reason = \"jitter feeds backoff only, never results\")\npub fn jitter(n: u64) -> u64 {\n    n ^ ticks()\n}\n";
    let b = analyze(&[
        ("crates/bench/src/clock.rs", bench),
        ("crates/core/src/sched.rs", bounded),
    ]);
    assert!(
        b.findings
            .iter()
            .all(|f| f.rule != Rule::DeterminismTaint && f.rule != Rule::StalePragma),
        "{:?}",
        b.findings
    );
}

#[test]
fn unsafe_reach_diffs_against_the_audit_inventory() {
    let file = ("crates/exec/src/simd.rs", UNSAFE_REACH);
    // Empty inventory: the pub entry is an unaudited addition; the private
    // helper and the unsafe-free pub fn stay silent.
    let empty = analyze(&[file]);
    let adds = lines(&empty.findings, Rule::UnsafeReach);
    assert_eq!(adds, [2], "{:?}", empty.findings);
    let msg = &empty
        .findings
        .iter()
        .find(|f| f.rule == Rule::UnsafeReach)
        .unwrap()
        .message;
    assert!(
        msg.contains("entry → helper") || msg.contains("helper → entry"),
        "{msg}"
    );
    assert!(
        msg.contains("append `crates/exec/src/simd.rs::entry`"),
        "{msg}"
    );
    assert_eq!(empty.unsafe_reach, ["crates/exec/src/simd.rs::entry"]);

    // Exact inventory: clean.
    let triples = vec![(
        "crates/exec/src/simd.rs".to_string(),
        "crates/exec/src/simd.rs".to_string(),
        UNSAFE_REACH.to_string(),
    )];
    let audited = analyze_sources(&triples, "crates/exec/src/simd.rs::entry\n", "");
    assert!(
        audited.findings.iter().all(|f| f.rule != Rule::UnsafeReach),
        "{:?}",
        audited.findings
    );

    // A stale entry fails too, anchored at the audit file.
    let stale = analyze_sources(
        &triples,
        "crates/exec/src/simd.rs::entry\ncrates/exec/src/simd.rs::retired\n",
        "",
    );
    let f = stale
        .findings
        .iter()
        .find(|f| f.rule == Rule::UnsafeReach)
        .expect("stale entry must fire");
    assert_eq!(f.file, audit::UNSAFE_AUDIT);
    assert!(
        f.message.contains("retired") && f.message.contains("stale"),
        "{}",
        f.message
    );
}

#[test]
fn panic_surface_judges_reachability_not_lexical_position() {
    let findings = lint_source("crates/exec/src/kernels.rs", PANIC_SURFACE);
    // `helper` (assert, line 7) is reached from pub `kernel`; `checked` is
    // pragma-allowed (the NaN sentinel); `never_called`'s todo!() is
    // unreachable from the surface and stays silent.
    assert_eq!(lines(&findings, Rule::PanicSurface), [7], "{findings:?}");
    let msg = &findings
        .iter()
        .find(|f| f.rule == Rule::PanicSurface)
        .unwrap()
        .message;
    assert!(msg.contains("kernel → helper"), "{msg}");
    assert!(msg.contains("`assert!` (line 8)"), "{msg}");
    assert!(
        lines(&findings, Rule::StalePragma).is_empty(),
        "{findings:?}"
    );
    // The same text away from the hot surface is not audited at all.
    let away = lint_source("crates/core/src/kernels.rs", PANIC_SURFACE);
    assert!(lines(&away, Rule::PanicSurface).is_empty());
}

#[test]
fn span_coverage_accepts_openers_runs_under_and_calls_opener() {
    let findings = lint_source("crates/exec/src/kernels.rs", SPAN_COVERAGE);
    // `opener` opens, `inner` runs under it, `wrapper` calls it, `tiny` is
    // pragma-allowed — only `uncovered` (line 15) fires.
    assert_eq!(lines(&findings, Rule::SpanCoverage), [15], "{findings:?}");
    assert!(lines(&findings, Rule::StalePragma).is_empty());
    // Off the hot surface the rule does not apply.
    let away = lint_source("crates/exec/src/blocked.rs", SPAN_COVERAGE);
    assert!(lines(&away, Rule::SpanCoverage).is_empty());
}

#[test]
fn stale_pragmas_fire_only_where_nothing_is_suppressed() {
    let findings = lint_source("crates/core/src/cache.rs", STALE_PRAGMA);
    // The unordered-collection pragma on line 2 suppresses the HashMap
    // finding; the no-fma pragma on line 4 suppresses nothing.
    assert_eq!(lines(&findings, Rule::StalePragma), [4], "{findings:?}");
    assert!(lines(&findings, Rule::UnorderedCollection).is_empty());
    assert_eq!(findings.len(), 1);
}

// ---------------------------------------------------------------------------
// Filesystem end-to-end: audit diffs, the ratchet, and the workspace gate.
// ---------------------------------------------------------------------------

/// Writes a miniature workspace, returns `lint_workspace`'s gate findings.
fn lint_temp_workspace(name: &str, files: &[(&str, &str)]) -> (usize, Vec<Finding>) {
    let root = std::env::temp_dir().join(format!("mega-lint-{name}-{}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    for (rel, text) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
    }
    let out = lint_workspace(&root).expect("scan temp workspace");
    std::fs::remove_dir_all(&root).unwrap();
    out
}

#[test]
fn injected_unsafe_reaching_fn_produces_a_ci_failing_diff() {
    let simd = "pub fn audited(p: *const f32) -> f32 {\n\
                \x20   // SAFETY: caller contract.\n\
                \x20   unsafe { *p }\n\
                }\n\
                \n\
                pub fn sneaky(p: *const f32) -> f32 {\n\
                \x20   audited(p)\n\
                }\n";
    // The checked-in inventory knows `audited` and a retired fn — so the
    // injected `sneaky` is an addition AND the inventory has a stale line;
    // both must gate (the ratchet file grants no headroom).
    let audit_txt =
        "# inventory\ncrates/exec/src/simd.rs::audited\ncrates/exec/src/simd.rs::retired\n";
    let (files, gate) = lint_temp_workspace(
        "inject",
        &[
            ("crates/exec/src/simd.rs", simd),
            ("crates/analysis/audit/unsafe_reach.txt", audit_txt),
            ("crates/analysis/audit/ratchet.txt", "unsafe-reach 0\n"),
        ],
    );
    assert_eq!(files, 1, "audit files are data, not scanned sources");
    assert_eq!(
        gate.len(),
        3,
        "addition + stale entry + ratchet summary: {gate:?}"
    );
    assert!(gate.iter().all(|f| f.rule == Rule::UnsafeReach));
    let add = gate.iter().find(|f| f.file.ends_with("simd.rs")).unwrap();
    assert_eq!(add.line, 6, "anchored at `pub fn sneaky`");
    assert!(add
        .message
        .contains("append `crates/exec/src/simd.rs::sneaky`"));
    let stale = gate.iter().find(|f| f.file == audit::UNSAFE_AUDIT).unwrap();
    assert!(stale.message.contains("retired"), "{}", stale.message);
}

#[test]
fn ratchet_baselines_match_the_workspace_exactly() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = mega_analysis::analyze_workspace(&root).expect("workspace scan");
    assert!(!a.ratchet.is_empty(), "ratchet.txt must be checked in");
    for r in &a.ratchet {
        assert!(
            r.count <= r.baseline,
            "`{}` has {} findings, over its ratchet baseline of {} — fix the new \
             sites; the baseline only goes down",
            r.rule.id(),
            r.count,
            r.baseline
        );
        assert!(
            r.count == r.baseline,
            "`{}` is at {} findings, below its baseline of {} — tighten \
             {} to lock the progress in",
            r.rule.id(),
            r.count,
            r.baseline,
            audit::RATCHET_FILE
        );
    }
    assert!(
        a.ratchet.iter().any(|r| r.rule == Rule::PanicSurface),
        "the inherited panic-surface debt must stay ratcheted"
    );
}

#[test]
fn unsafe_inventory_file_matches_the_computed_reach_set() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = mega_analysis::analyze_workspace(&root).expect("workspace scan");
    let checked_in = std::fs::read_to_string(root.join(audit::UNSAFE_AUDIT)).unwrap_or_default();
    let entries: Vec<&str> = checked_in
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        entries, a.unsafe_reach,
        "regenerate with `mega-lint --workspace --update-audits`"
    );
    assert!(
        a.unsafe_reach
            .iter()
            .all(|e| e.starts_with("crates/exec/src/simd.rs::")),
        "unsafe must stay confined to the SIMD backend: {:?}",
        a.unsafe_reach
    );
}

#[test]
fn workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (files, findings) = lint_workspace(&root).expect("workspace scan");
    assert!(
        files > 100,
        "expected the full source tree, saw {files} files"
    );
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "workspace must lint clean:\n{}",
        rendered.join("\n")
    );
}
