//! Figure 4: per-kernel SM efficiency under the DGL baseline.
//!
//! Paper setup: batch 64, hidden 128. The dense `sgemm` kernel's SM
//! efficiency dwarfs the graph kernels (`cub`, `dgl`), across every dataset
//! and both models.

use mega_bench::{bench_datasets, fmt, profile_config, save_json, TableWriter};
use mega_datasets::DatasetSpec;
use mega_gnn::{EngineChoice, ModelKind};
use mega_gpu_sim::KernelKind;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    model: String,
    sgemm: f64,
    cub: f64,
    dgl_gather: f64,
    dgl_scatter: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(7);
    let (batch, hidden, layers) = (64usize, 128usize, 2usize);
    let mut table = TableWriter::new(&[
        "dataset",
        "model",
        "sgemm",
        "cub",
        "dgl-gather",
        "dgl-scatter",
    ]);
    let mut rows = Vec::new();
    for ds in bench_datasets(&spec) {
        for kind in [ModelKind::GatedGcn, ModelKind::GraphTransformer] {
            let cost = profile_config(&ds, kind, EngineChoice::Baseline, batch, hidden, layers);
            let eff = |k: KernelKind| cost.report.kernel(k).map_or(0.0, |r| r.sm_efficiency);
            table.row(&[
                ds.name.clone(),
                kind.label().to_string(),
                fmt(eff(KernelKind::Sgemm), 2),
                fmt(eff(KernelKind::CubSort), 2),
                fmt(eff(KernelKind::DglGather), 2),
                fmt(eff(KernelKind::DglScatter), 2),
            ]);
            rows.push(Row {
                dataset: ds.name.clone(),
                model: kind.label().to_string(),
                sgemm: eff(KernelKind::Sgemm),
                cub: eff(KernelKind::CubSort),
                dgl_gather: eff(KernelKind::DglGather),
                dgl_scatter: eff(KernelKind::DglScatter),
            });
        }
    }
    mega_obs::data!("Figure 4 — SM efficiency per kernel (batch 64, hidden 128, DGL baseline)\n");
    table.print();
    mega_obs::data!("\nPaper claim: sgemm SM efficiency far above cub/dgl in every configuration.");
    save_json("fig04_sm_efficiency", &rows);
}
