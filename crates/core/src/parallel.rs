//! Parallel band execution: chunked, deterministic banded aggregation.
//!
//! The width-ω band makes attention *local in path position*: every pair
//! `(i, j)` with an active slot satisfies `|i - j| ≤ ω`. This module exploits
//! that locality to split the path into `ceil(L / chunk)` segments whose read
//! extents overlap by exactly ω positions, so **no in-band pair straddles a
//! cut**: every active [`BandSlot`](crate::band::BandSlot) relevant to a chunk's owned rows is fully
//! visible inside that chunk's extent.
//!
//! # Determinism guarantee
//!
//! Each chunk *owns* a disjoint range of output rows and computes them by
//! folding slot contributions in the same ascending `(lo, offset)` order the
//! serial kernel uses. Because row accumulators are per-row and never shared
//! across chunks, the parallel result is **bit-identical** to the serial
//! result for every thread count and every chunk size — there is no
//! cross-chunk floating-point re-association at all. The reduction step is a
//! plain in-order concatenation of owned row ranges.
//!
//! Worker threads are plain `std::thread::scope` workers pulling chunk
//! indices from an atomic counter; results land in their slot of a
//! pre-allocated vector, so scheduling order cannot affect output order.

use crate::band::BandMask;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The host's available parallelism, resolved once per process.
///
/// Cached because [`Parallelism::effective_threads`] sits on kernel hot
/// paths (every matmul dispatch consults it) and
/// [`std::thread::available_parallelism`] can hit the filesystem on Linux
/// (cgroup quota files).
pub fn host_threads() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    // mega-lint: allow(determinism-taint, reason = "thread count only partitions work; ordered_map merges per-chunk results in index order, so numeric results are bit-identical for any worker count (proven by dist equivalence tests)")
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Thread-count and chunking knobs for the parallel band engine.
///
/// `threads == 0` means "auto": use `RAYON_NUM_THREADS` when set (the
/// conventional env var, honored for CI compatibility even though the pool is
/// std-based), otherwise [`std::thread::available_parallelism`]. An explicit
/// non-zero `threads` always wins over the environment.
///
/// Unless [`pin_threads`](Parallelism::pin_threads) is set, the resolved
/// count is **clamped to the host's available parallelism**: running more
/// compute workers than cores is pure overhead (the `f32` kernels never
/// block), and on a small host the oversubscribed threads time-slice one
/// core while paying all the coordination cost — the measured band-engine
/// regression that motivated the clamp. Results are bit-identical for every
/// worker count, so the clamp is purely a performance decision.
///
/// `chunk_size == 0` means "auto": size chunks so each worker gets several,
/// with a floor of the band window ω.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Parallelism {
    /// Worker thread count; 0 = auto (env, then hardware).
    pub threads: usize,
    /// Owned rows per chunk; 0 = auto.
    pub chunk_size: usize,
    /// Honor `threads` exactly, even beyond the host's cores. Test harnesses
    /// set this to force the parallel code paths (and their bit-identity
    /// proofs) to execute on any machine; production configs leave it off.
    pub pin_threads: bool,
}

impl Parallelism {
    /// A config requesting `threads` workers (0 = auto), clamped to the
    /// host's cores at resolution time.
    pub fn with_threads(threads: usize) -> Self {
        Parallelism {
            threads,
            chunk_size: 0,
            pin_threads: false,
        }
    }

    /// A config running **exactly** `threads` workers, bypassing the
    /// host-core clamp. Oversubscription makes nothing faster, but the
    /// parallel paths stay bit-identical to serial, so equivalence and
    /// race-check harnesses use this to exercise them on any host.
    pub fn pinned(threads: usize) -> Self {
        Parallelism {
            threads,
            chunk_size: 0,
            pin_threads: true,
        }
    }

    /// Sets the owned-rows-per-chunk size (0 = auto).
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size;
        self
    }

    /// Resolves the worker count actually used: explicit `threads`, then
    /// `RAYON_NUM_THREADS`, then the hardware — clamped to the host's cores
    /// unless [`pin_threads`](Parallelism::pin_threads) is set.
    pub fn effective_threads(&self) -> usize {
        let requested = if self.threads > 0 {
            self.threads
        } else {
            let mut n = 0usize;
            if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
                if let Ok(parsed) = v.trim().parse::<usize>() {
                    n = parsed;
                }
            }
            if n == 0 {
                n = host_threads();
            }
            n
        };
        if self.pin_threads {
            requested.max(1)
        } else {
            requested.max(1).min(host_threads())
        }
    }

    /// Resolves the owned-rows-per-chunk size for a path of length `len`
    /// under window ω.
    pub fn effective_chunk_size(&self, len: usize, window: usize) -> usize {
        if self.chunk_size > 0 {
            return self.chunk_size.max(1);
        }
        let workers = self.effective_threads();
        // Several chunks per worker for load balance, floored at ω so the
        // overlap stays a small fraction of each chunk.
        (len / (4 * workers).max(1)).max(window).max(1)
    }
}

/// Upper bound on memoized plans: a training run touches a handful of
/// (band, parallelism) geometries, so the cap only matters to pathological
/// callers sweeping lengths — beyond it, plans are built but not retained.
const PLAN_CACHE_CAP: usize = 1024;

/// Memo key for a cached plan: `(band length, window, chunk size)`.
type PlanKey = (usize, usize, usize);

/// The process-wide plan memo behind [`ChunkPlan::for_band_cached`].
fn plan_cache() -> &'static Mutex<BTreeMap<PlanKey, Arc<ChunkPlan>>> {
    static CACHE: OnceLock<Mutex<BTreeMap<PlanKey, Arc<ChunkPlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// One segment of the path: owns rows `[start, end)` exclusively and reads
/// rows/slots from the extended range `[read_lo, read_hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First owned row.
    pub start: usize,
    /// One past the last owned row.
    pub end: usize,
    /// First readable row (`start` minus ω, clamped to 0).
    pub read_lo: usize,
    /// One past the last readable row (`end` plus ω, clamped to the length).
    pub read_hi: usize,
}

impl Chunk {
    /// Number of owned rows.
    pub fn owned_len(&self) -> usize {
        self.end - self.start
    }
}

/// One violated [`ChunkPlan`] invariant, as reported by
/// [`ChunkPlan::validate`].
///
/// The message names the offending chunk and the invariant it breaks —
/// ownership partition (cover / no gaps / no overlap) or read-window
/// geometry (extends the owned range by exactly ω, clamped at the path
/// boundaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanViolation {
    /// Index of the offending chunk (0 when the plan as a whole is broken).
    pub chunk: usize,
    /// Which invariant is violated, and how.
    pub message: String,
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk {}: {}", self.chunk, self.message)
    }
}

impl std::error::Error for PlanViolation {}

/// The chunk decomposition of a path of length `len` under window ω.
///
/// Invariants (property-tested in `crates/core/tests/proptests.rs`):
///
/// * owned ranges partition `[0, len)` in order (cover, no gaps, no overlap);
/// * each read extent extends the owned range by exactly ω on both sides,
///   clamped at the path boundaries;
/// * every active [`BandSlot`] is *owned* by exactly one chunk — the one
///   whose owned range contains `slot.lo` — and both its endpoints lie
///   inside that chunk's read extent (`hi ≤ lo + ω < end + ω`).
///
/// [`BandSlot`]: crate::band::BandSlot
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPlan {
    len: usize,
    window: usize,
    chunks: Vec<Chunk>,
}

impl ChunkPlan {
    /// Splits `[0, len)` into `ceil(len / chunk_size)` chunks with ω-overlap
    /// read extents.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn build(len: usize, window: usize, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk_size must be >= 1");
        let mut chunks = Vec::with_capacity(len / chunk_size + 1);
        let mut start = 0;
        while start < len {
            let end = (start + chunk_size).min(len);
            chunks.push(Chunk {
                start,
                end,
                read_lo: start.saturating_sub(window),
                read_hi: (end + window).min(len),
            });
            start = end;
        }
        if len == 0 {
            // A single empty chunk keeps downstream map/reduce uniform.
            chunks.push(Chunk {
                start: 0,
                end: 0,
                read_lo: 0,
                read_hi: 0,
            });
        }
        ChunkPlan {
            len,
            window,
            chunks,
        }
    }

    /// Builds a plan from explicit parts, *without* validating them.
    ///
    /// This exists so the invariant checker's own tests (and the
    /// `race-check` harness in `mega-exec`) can construct deliberately
    /// corrupt plans and prove that [`ChunkPlan::validate`] and the shadow
    /// writer map reject them. Production code must use
    /// [`ChunkPlan::build`] / [`ChunkPlan::for_band`], which only produce
    /// valid plans.
    #[doc(hidden)]
    pub fn from_raw_parts(len: usize, window: usize, chunks: Vec<Chunk>) -> Self {
        ChunkPlan {
            len,
            window,
            chunks,
        }
    }

    /// Statically checks the two load-bearing invariants of the parallel
    /// band engine:
    ///
    /// 1. **Write-set partition** — the chunks' owned ranges `[start, end)`
    ///    exactly partition `[0, len)`: in order, gap-free, overlap-free
    ///    (the empty path is covered by exactly one empty chunk). This is
    ///    what makes cross-chunk write races impossible and the in-order
    ///    concatenation reduction correct.
    /// 2. **Read-window geometry** — every read extent is the owned range
    ///    extended by exactly ω on each side, clamped to the path
    ///    boundaries, so every in-band pair relevant to an owned row is
    ///    visible inside the chunk and nothing further is ever read.
    ///
    /// [`ChunkPlan::for_band`] validates every plan it hands out; the
    /// `race-check` feature of `mega-exec` additionally verifies the
    /// *dynamic* accesses of the banded kernels against these bounds.
    pub fn validate(&self) -> Result<(), PlanViolation> {
        let fail = |chunk: usize, message: String| Err(PlanViolation { chunk, message });
        if self.chunks.is_empty() {
            return fail(0, "plan has no chunks; even an empty path owns one".into());
        }
        if self.len == 0 {
            let c = self.chunks[0];
            if self.chunks.len() != 1
                || c != (Chunk {
                    start: 0,
                    end: 0,
                    read_lo: 0,
                    read_hi: 0,
                })
            {
                return fail(
                    0,
                    format!(
                        "an empty path must be exactly one empty chunk, got {:?}",
                        self.chunks
                    ),
                );
            }
            return Ok(());
        }
        let mut expected_start = 0usize;
        for (i, c) in self.chunks.iter().enumerate() {
            if c.start != expected_start {
                return fail(
                    i,
                    format!(
                        "owned ranges must partition [0, {}) in order: \
                         expected start {expected_start}, got {}",
                        self.len, c.start
                    ),
                );
            }
            if c.end <= c.start {
                return fail(i, format!("owned range [{}, {}) is empty", c.start, c.end));
            }
            if c.end > self.len {
                return fail(
                    i,
                    format!(
                        "owned range ends at {} beyond path length {}",
                        c.end, self.len
                    ),
                );
            }
            let want_lo = c.start.saturating_sub(self.window);
            if c.read_lo != want_lo {
                return fail(
                    i,
                    format!(
                        "read_lo {} is not start - ω clamped at 0 (want {want_lo})",
                        c.read_lo
                    ),
                );
            }
            let want_hi = (c.end + self.window).min(self.len);
            if c.read_hi != want_hi {
                return fail(
                    i,
                    format!(
                        "read_hi {} is not end + ω clamped at len (want {want_hi})",
                        c.read_hi
                    ),
                );
            }
            expected_start = c.end;
        }
        if expected_start != self.len {
            return fail(
                self.chunks.len() - 1,
                format!(
                    "owned ranges cover only [0, {expected_start}) of [0, {})",
                    self.len
                ),
            );
        }
        Ok(())
    }

    /// The plan a `Parallelism` config resolves to for this band geometry.
    ///
    /// Every plan handed out is [validated](ChunkPlan::validate); a failure
    /// here would mean [`ChunkPlan::build`] itself is broken, so it panics.
    pub fn for_band(band: &BandMask, par: &Parallelism) -> Self {
        let plan = Self::build(
            band.len(),
            band.window(),
            par.effective_chunk_size(band.len(), band.window()),
        );
        if let Err(v) = plan.validate() {
            panic!("ChunkPlan::build produced an invalid plan: {v}");
        }
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.plans", 1);
            mega_obs::record_value("core.parallel.plan_chunks", plan.chunks.len() as u64);
            for c in &plan.chunks {
                mega_obs::record_value("core.parallel.chunk_rows", c.owned_len() as u64);
            }
        }
        plan
    }

    /// The memoized twin of [`ChunkPlan::for_band`]: plans are pure
    /// functions of `(len, window, chunk_size)`, so identical band/
    /// parallelism pairs across steps and epochs share one `Arc`'d plan
    /// instead of rebuilding it per call. Hits and misses are counted as
    /// `core.parallel.plan_cache.{hits,misses}`; the cache is process-wide
    /// and never invalidated (the key fully determines the value).
    pub fn for_band_cached(band: &BandMask, par: &Parallelism) -> Arc<ChunkPlan> {
        let key = (
            band.len(),
            band.window(),
            par.effective_chunk_size(band.len(), band.window()),
        );
        let cache = plan_cache();
        {
            let guard = cache.lock().expect("plan cache poisoned");
            if let Some(plan) = guard.get(&key) {
                if mega_obs::enabled() {
                    mega_obs::counter_add("core.parallel.plan_cache.hits", 1);
                }
                return plan.clone();
            }
        }
        // Build outside the lock: for_band validates and records its own
        // construction counters, and a racing duplicate build is harmless
        // (both produce the identical plan; last insert wins).
        let plan = Arc::new(Self::for_band(band, par));
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.plan_cache.misses", 1);
        }
        let mut guard = cache.lock().expect("plan cache poisoned");
        if guard.len() < PLAN_CACHE_CAP {
            guard.insert(key, plan.clone());
        }
        plan
    }

    /// Path length covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the covered path is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window ω the plan was built with.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The chunks in path order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Index of the chunk owning row (or slot `lo`) `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= len`.
    pub fn owner_of(&self, pos: usize) -> usize {
        assert!(
            pos < self.len,
            "position {pos} outside path of length {}",
            self.len
        );
        self.chunks.partition_point(|c| c.end <= pos)
    }
}

/// Maps `f` over `items` on a scoped worker pool, preserving input order.
///
/// Workers pull indices from an atomic counter; each result lands in its own
/// pre-allocated slot, so the output `Vec` is index-ordered regardless of
/// scheduling. With `threads <= 1` (or one item) the map runs inline.
pub fn ordered_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.inline_runs", 1);
        }
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = threads.min(items.len());
    if mega_obs::enabled() {
        mega_obs::counter_add("core.parallel.pool_runs", 1);
        mega_obs::record_value("core.parallel.pool_items", items.len() as u64);
        mega_obs::record_value("core.parallel.pool_workers", workers as u64);
    }
    let worker = || {
        let mut done = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= items.len() {
                break;
            }
            let out = f(i, &items[i]);
            *slots[i].lock().expect("result slot poisoned") = Some(out);
            done += 1;
        }
        // Items-per-worker is scheduling-dependent, hence volatile.
        if done > 0 && mega_obs::enabled() {
            mega_obs::record_volatile("core.parallel.worker_items", done);
        }
    };
    std::thread::scope(|scope| {
        // The calling thread is an idle core until the scope joins — make it
        // worker 0 and only spawn the remainder, saving one spawn/join pair
        // per call (and all of them when workers == 1).
        for _ in 1..workers {
            scope.spawn(worker);
        }
        worker();
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed every claimed index")
        })
        .collect()
}

/// Runs one closure per worker to completion, using the calling thread as
/// worker 0.
///
/// This is the primitive behind the direct-write kernels: the caller splits
/// its output buffer into disjoint `&mut` slices, moves one slice into each
/// job, and every job writes its rows in place — no per-item `Mutex`, no
/// result collection, no copy-back. With zero or one job nothing is spawned;
/// the single job runs inline on the caller.
///
/// A panicking spawned job propagates out of the enclosing
/// [`std::thread::scope`] (as with [`ordered_map`], the payload is replaced
/// by the scope's generic message); a panic in job 0 propagates directly.
pub fn join_workers<J>(jobs: Vec<J>)
where
    J: FnOnce() + Send,
{
    let mut jobs = jobs;
    let Some(first) = jobs.pop() else { return };
    if jobs.is_empty() {
        if mega_obs::enabled() {
            mega_obs::counter_add("core.parallel.inline_runs", 1);
        }
        first();
        return;
    }
    if mega_obs::enabled() {
        mega_obs::counter_add("core.parallel.pool_runs", 1);
        mega_obs::record_value("core.parallel.pool_workers", (jobs.len() + 1) as u64);
    }
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(job);
        }
        first();
    });
}

// The banded aggregation / weight-grad kernels that used to live here moved
// to `mega-exec` (`mega_exec::kernels::banded_*`): they are execution-backend
// concerns now, dispatched through the `Backend` trait alongside the dense
// kernels. This module keeps the *scheduling* primitives they run on.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_plan_partitions_and_overlaps() {
        let plan = ChunkPlan::build(103, 4, 10);
        let chunks = plan.chunks();
        assert_eq!(chunks.first().unwrap().start, 0);
        assert_eq!(chunks.last().unwrap().end, 103);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            // Read extents overlap by exactly 2ω across a cut (ω each side).
            assert_eq!(w[0].read_hi, (w[0].end + 4).min(103));
            assert_eq!(w[1].read_lo, w[1].start - 4);
        }
    }

    #[test]
    fn owner_of_matches_owned_ranges() {
        let plan = ChunkPlan::build(57, 3, 8);
        for (ci, c) in plan.chunks().iter().enumerate() {
            for r in c.start..c.end {
                assert_eq!(plan.owner_of(r), ci);
            }
        }
    }

    #[test]
    fn empty_plan_has_one_empty_chunk() {
        let plan = ChunkPlan::build(0, 2, 8);
        assert!(plan.is_empty());
        assert_eq!(plan.chunks().len(), 1);
        assert_eq!(plan.chunks()[0].owned_len(), 0);
    }

    #[test]
    fn built_plans_always_validate() {
        for len in [0usize, 1, 7, 103, 400] {
            for window in [1usize, 3, 8] {
                for chunk in [1usize, 5, 64] {
                    let plan = ChunkPlan::build(len, window, chunk);
                    assert_eq!(
                        plan.validate(),
                        Ok(()),
                        "len={len} ω={window} chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn validate_rejects_overlapping_ownership() {
        let mut chunks = ChunkPlan::build(40, 2, 10).chunks().to_vec();
        chunks[1].start = 5; // overlaps chunk 0's owned rows [0, 10)
        let bad = ChunkPlan::from_raw_parts(40, 2, chunks);
        let v = bad.validate().unwrap_err();
        assert_eq!(v.chunk, 1);
        assert!(v.message.contains("partition"), "{v}");
    }

    #[test]
    fn validate_rejects_coverage_gaps() {
        let mut chunks = ChunkPlan::build(40, 2, 10).chunks().to_vec();
        chunks.remove(2); // rows [20, 30) now unowned
        let bad = ChunkPlan::from_raw_parts(40, 2, chunks);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_read_windows() {
        let mut chunks = ChunkPlan::build(40, 2, 10).chunks().to_vec();
        chunks[1].read_lo = 0; // wider than start - ω
        let bad = ChunkPlan::from_raw_parts(40, 2, chunks.clone());
        assert!(bad.validate().unwrap_err().message.contains("read_lo"));
        let mut chunks = ChunkPlan::build(40, 2, 10).chunks().to_vec();
        chunks[2].read_hi = 40; // wider than end + ω
        let bad = ChunkPlan::from_raw_parts(40, 2, chunks);
        assert!(bad.validate().unwrap_err().message.contains("read_hi"));
    }

    #[test]
    fn validate_rejects_truncated_plans() {
        let mut chunks = ChunkPlan::build(40, 2, 10).chunks().to_vec();
        chunks.pop();
        let bad = ChunkPlan::from_raw_parts(40, 2, chunks);
        assert!(bad.validate().unwrap_err().message.contains("cover only"));
        assert!(ChunkPlan::from_raw_parts(3, 1, Vec::new())
            .validate()
            .is_err());
    }

    #[test]
    fn for_band_cached_shares_one_plan_per_geometry() {
        let g = mega_graph::generate::cycle(12).unwrap();
        let path: Vec<usize> = (0..12).collect();
        let band = BandMask::build(&g, &path, 2);
        let par = Parallelism::pinned(2).with_chunk_size(5);
        let a = ChunkPlan::for_band_cached(&band, &par);
        let b = ChunkPlan::for_band_cached(&band, &par);
        assert!(Arc::ptr_eq(&a, &b), "same geometry must share one plan");
        assert_eq!(*a, ChunkPlan::for_band(&band, &par));
        // A different chunking is a different plan, not a stale hit.
        let c = ChunkPlan::for_band_cached(&band, &Parallelism::pinned(2).with_chunk_size(3));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(*c, ChunkPlan::build(12, 2, 3));
    }

    #[test]
    fn ordered_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = ordered_map(&items, 8, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(doubled, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_prefers_explicit() {
        // Unpinned requests are capped at the host's cores…
        assert_eq!(
            Parallelism::with_threads(3).effective_threads(),
            3.min(host_threads())
        );
        // …while pinned requests are honored exactly, on any host.
        assert_eq!(Parallelism::pinned(3).effective_threads(), 3);
        assert!(Parallelism::default().effective_threads() >= 1);
    }

    #[test]
    fn pinned_bypasses_host_clamp() {
        let many = host_threads() + 7;
        assert_eq!(Parallelism::pinned(many).effective_threads(), many);
        assert!(Parallelism::with_threads(many).effective_threads() <= host_threads());
        // Degenerate requests still resolve to at least one worker. (No
        // exact value: threads == 0 defers to RAYON_NUM_THREADS when set.)
        assert!(Parallelism::pinned(0).effective_threads() >= 1);
    }

    #[test]
    fn join_workers_runs_every_job() {
        use std::sync::atomic::AtomicU64;
        let hits = AtomicU64::new(0);
        join_workers(Vec::<fn()>::new()); // no jobs: nothing to do
        join_workers(vec![|| {
            hits.fetch_add(1, Ordering::Relaxed);
        }]);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let jobs: Vec<_> = (0..5u64)
            .map(|i| {
                let hits = &hits;
                move || {
                    hits.fetch_add(1 << i, Ordering::Relaxed);
                }
            })
            .collect();
        join_workers(jobs);
        assert_eq!(hits.load(Ordering::Relaxed), 1 + 0b11111);
    }
}
