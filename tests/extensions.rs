//! Integration tests for the extension surfaces: persistence, heterogeneous
//! multi-path scheduling, graph I/O, the GAT model, and distributed scaling —
//! all through the facade crate, as a downstream user would.

use mega::core::{persist, preprocess, preprocess_hetero, HeteroGraph, MegaConfig};
use mega::datasets::{zinc, DatasetSpec};
use mega::dist::{epoch_scaling, path_partition_volume, ClusterConfig};
use mega::gnn::{EngineChoice, GnnConfig, ModelKind, Trainer};
use mega::graph::{generate, io, Direction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Preprocess → save → load → train with the loaded schedule's statistics
/// intact.
#[test]
fn schedule_survives_persistence() {
    let g = generate::barabasi_albert(40, 2, &mut StdRng::seed_from_u64(1)).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    let dir = std::env::temp_dir().join("mega-ext-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sched.json");
    persist::save(&s, &path).unwrap();
    let loaded = persist::load(&path).unwrap();
    assert_eq!(s.stats(), loaded.stats());
    assert_eq!(s.band().active_slots(), loaded.band().active_slots());
    std::fs::remove_file(&path).ok();
}

/// Graph file round trip feeds preprocessing.
#[test]
fn io_feeds_preprocessing() {
    let g = generate::watts_strogatz(50, 4, 0.1, &mut StdRng::seed_from_u64(2)).unwrap();
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let back = io::read_edge_list(&buf[..], Direction::Undirected).unwrap();
    let s = preprocess(&back, &MegaConfig::default()).unwrap();
    assert_eq!(s.band().covered_edge_count(), g.edge_count());
}

/// Heterogeneous preprocessing covers every edge exactly once on a realistic
/// typed graph.
#[test]
fn hetero_covers_typed_graph() {
    let g = generate::erdos_renyi(30, 0.15, &mut StdRng::seed_from_u64(3)).unwrap();
    let types: Vec<usize> = (0..30).map(|v| v % 3).collect();
    let h = HeteroGraph::new(g.clone(), types, 3).unwrap();
    let mp = preprocess_hetero(&h, &MegaConfig::default()).unwrap();
    assert_eq!(mp.covered_edge_count(), g.edge_count());
    assert_eq!(h.intra_edge_count() + h.cross_edge_count(), g.edge_count());
}

/// GAT trains end-to-end under the MEGA engine with finite losses and a
/// cheaper simulated epoch than the baseline.
#[test]
fn gat_trains_under_both_engines() {
    let ds = zinc(&DatasetSpec::tiny(4));
    let cfg = GnnConfig::new(ModelKind::Gat, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(16)
        .with_layers(2)
        .with_heads(2);
    let base = Trainer::new(EngineChoice::Baseline)
        .with_epochs(2)
        .with_batch_size(8)
        .run(&ds, cfg.clone());
    let mega = Trainer::new(EngineChoice::Mega)
        .with_epochs(2)
        .with_batch_size(8)
        .run(&ds, cfg);
    assert!(base.records.iter().all(|r| r.train_loss.is_finite()));
    assert!(mega.records.iter().all(|r| r.train_loss.is_finite()));
    assert!(mega.epoch_sim_seconds < base.epoch_sim_seconds);
}

/// The scaling model favors the path partition on a real preprocessed graph.
#[test]
fn scaling_model_prefers_path_partition() {
    let g = generate::barabasi_albert(300, 3, &mut StdRng::seed_from_u64(5)).unwrap();
    let s = preprocess(&g, &MegaConfig::default()).unwrap();
    let cluster = ClusterConfig::ten_gbe();
    let mut last_speedup = 0.0;
    for k in [2usize, 8, 32] {
        let stats = path_partition_volume(&s, k);
        let point = epoch_scaling(0.5, &stats, 100, 64, &cluster);
        assert!(point.speedup > last_speedup, "k={k} did not improve");
        last_speedup = point.speedup;
    }
}

/// Training protocol extensions hold together: shuffle + LR patience + early
/// stop in one run.
#[test]
fn full_protocol_run() {
    let ds = zinc(&DatasetSpec::tiny(6));
    let cfg = GnnConfig::new(ModelKind::GatedGcn, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(16)
        .with_layers(2);
    let hist = Trainer::new(EngineChoice::Mega)
        .with_epochs(6)
        .with_batch_size(8)
        .with_shuffle(7)
        .with_lr_patience(2)
        .with_early_stop(4)
        .run(&ds, cfg);
    assert!(!hist.records.is_empty() && hist.records.len() <= 6);
    assert!(hist.best_val_loss().is_finite());
}
