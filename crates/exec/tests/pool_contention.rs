//! Concurrency stress for [`BufferPool`]: the freelist and its telemetry
//! must stay coherent under simultaneous acquire/release from the thread
//! counts the intra-op GEMM actually runs.
//!
//! Lives in its own integration-test binary (= its own process) so the
//! global `mega_obs` state exercised by `pool_telemetry.rs` cannot
//! interleave with the counter asserts here.

use mega_exec::BufferPool;
use std::sync::Arc;
use std::thread;

#[test]
fn concurrent_acquire_release_keeps_counters_consistent() {
    const THREADS: usize = 4;
    const CYCLES: usize = 500;
    let pool = Arc::new(BufferPool::new());
    thread::scope(|s| {
        for t in 0..THREADS {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..CYCLES {
                    // Four size classes, phase-shifted per thread so threads
                    // contend on the same classes out of step.
                    let len = 16usize << ((t + i) % 4);
                    let mut buf = pool.acquire(len);
                    assert_eq!(buf.len(), len);
                    // Zeroing is the pool's visibility contract: a dirty
                    // recycled buffer here would mean one thread observed
                    // another's released contents.
                    assert!(
                        buf.iter().all(|&v| v == 0.0),
                        "thread {t} cycle {i}: recycled buffer not zeroed"
                    );
                    buf.iter_mut().for_each(|v| *v = t as f32 + 1.0);
                    pool.release(buf);
                }
            });
        }
    });
    // Every acquire was exactly one hit or one miss — no drops, no double
    // counts under contention.
    assert_eq!(pool.hits() + pool.misses(), (THREADS * CYCLES) as u64);
    // Releases beyond the per-class cap are dropped, so the resident set
    // stays bounded by classes-in-use × cap.
    assert!(pool.pooled() <= 4 * BufferPool::MAX_PER_CLASS);
    // Steady state: with at most THREADS buffers checked out per class at
    // any instant, the freelist warms up and almost every acquire after the
    // first few cycles is a hit.
    assert!(
        pool.hits() >= (THREADS * (CYCLES - 2 * THREADS)) as u64,
        "freelist failed to warm up: {} hits / {} misses",
        pool.hits(),
        pool.misses()
    );
}
