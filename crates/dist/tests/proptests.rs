//! Property-based tests for partitioning and communication accounting.

use mega_core::{preprocess, MegaConfig};
use mega_dist::{
    bfs_partition, edge_cut_volume, epoch_scaling, hash_partition, path_partition_volume,
    path_segments, ClusterConfig,
};
use mega_graph::{Graph, GraphBuilder};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..80).prop_map(move |pairs| {
            let mut b = GraphBuilder::undirected(n);
            b.dedup(true);
            for v in 1..n {
                b.edge(v - 1, v).unwrap();
            }
            for (a, c) in pairs {
                b.edge(a, c).unwrap();
            }
            b.build().unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioners produce valid, total assignments.
    #[test]
    fn partitions_are_total(g in arb_graph(), k in 1usize..8) {
        for parts in [hash_partition(&g, k), bfs_partition(&g, k)] {
            prop_assert_eq!(parts.len(), g.node_count());
            prop_assert!(parts.iter().all(|&p| p < k));
        }
    }

    /// Edge-cut volume counts exactly two rows per cut edge and pairs are
    /// bounded by k(k-1)/2.
    #[test]
    fn edge_cut_accounting(g in arb_graph(), k in 1usize..8) {
        let parts = hash_partition(&g, k);
        let c = edge_cut_volume(&g, &parts, k);
        let cut_edges = g.edges().filter(|&(a, b)| parts[a] != parts[b]).count();
        prop_assert_eq!(c.volume_rows, 2 * cut_edges);
        prop_assert!(c.comm_pairs <= k * k.saturating_sub(1) / 2);
        prop_assert_eq!(c.replica_rows, 0);
    }

    /// Path segments are contiguous, total, and yield exactly
    /// min(k, path_len) - 1 ... communicating pairs <= k - 1.
    #[test]
    fn path_partition_chain(g in arb_graph(), k in 1usize..8) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let segs = path_segments(&s, k);
        prop_assert_eq!(segs.len(), s.path().len());
        for w in segs.windows(2) {
            prop_assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        let p = path_partition_volume(&s, k);
        prop_assert!(p.comm_pairs <= k.saturating_sub(1));
        prop_assert!(p.volume_rows >= p.replica_rows);
    }

    /// Scaling predictions are physical: positive times, speedup ≤ k, and
    /// communication grows with volume.
    #[test]
    fn scaling_is_physical(g in arb_graph(), k in 1usize..8) {
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let stats = path_partition_volume(&s, k);
        let point = epoch_scaling(1.0, &stats, 10, 32, &ClusterConfig::ten_gbe());
        prop_assert!(point.total_seconds > 0.0);
        prop_assert!(point.speedup <= k as f64 + 1e-9);
        prop_assert!((point.compute_seconds + point.comm_seconds - point.total_seconds).abs() < 1e-12);
    }
}
