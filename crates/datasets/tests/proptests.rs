//! Property-based tests for the dataset generators.

use mega_datasets::{aqsol, csl, cycles, zinc, Dataset, DatasetSpec};
use mega_graph::algo;
use proptest::prelude::*;

fn spec(seed: u64, train: usize) -> DatasetSpec {
    DatasetSpec {
        train,
        val: 4,
        test: 4,
        seed,
    }
}

fn check_common(ds: &Dataset) -> Result<(), TestCaseError> {
    prop_assert!(ds.validate(), "{} failed validation", ds.name);
    for s in ds.all_samples() {
        prop_assert!(s.is_consistent());
        prop_assert!(s.graph.node_count() > 0);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generator validates for arbitrary seeds and split sizes.
    #[test]
    fn generators_always_validate(seed in 0u64..10_000, train in 4usize..24) {
        check_common(&zinc(&spec(seed, train)))?;
        check_common(&aqsol(&spec(seed, train)))?;
        check_common(&csl(&spec(seed, train)))?;
        check_common(&cycles(&spec(seed, train)))?;
    }

    /// Molecular graphs are connected (they model single molecules).
    #[test]
    fn molecular_graphs_connected(seed in 0u64..2_000) {
        for ds in [zinc(&spec(seed, 6)), aqsol(&spec(seed, 6))] {
            for s in ds.all_samples() {
                prop_assert!(algo::is_connected(&s.graph), "{}", ds.name);
            }
        }
    }

    /// CSL graphs are always 4-regular and connected regardless of seed.
    #[test]
    fn csl_always_regular(seed in 0u64..2_000) {
        let ds = csl(&spec(seed, 8));
        for s in ds.all_samples() {
            prop_assert!(s.graph.degrees().iter().all(|&d| d == 4));
            prop_assert!(algo::is_connected(&s.graph));
        }
    }

    /// CYCLES labels always match the structural ground truth.
    #[test]
    fn cycles_labels_truthful(seed in 0u64..2_000) {
        let ds = cycles(&spec(seed, 8));
        for s in ds.all_samples() {
            prop_assert_eq!(
                s.target.class() == 1,
                mega_datasets::cycles::has_triangle(&s.graph)
            );
        }
    }

    /// Generation is a pure function of the spec.
    #[test]
    fn deterministic_per_spec(seed in 0u64..2_000) {
        let a = zinc(&spec(seed, 5));
        let b = zinc(&spec(seed, 5));
        for (x, y) in a.all_samples().zip(b.all_samples()) {
            prop_assert_eq!(x.graph.edge_list(), y.graph.edge_list());
            prop_assert_eq!(&x.node_features, &y.node_features);
        }
    }
}
