//! Dense tensor library with reverse-mode autograd for the MEGA GNN stack.
//!
//! The paper's models (GatedGCN and Graph Transformer) are trained in this
//! workspace on the CPU; this crate is the numeric substrate:
//!
//! * [`tensor`] — a row-major 2-D [`Tensor`] of `f32` with the raw kernels
//!   (matmul, elementwise maps, reductions, row gather/scatter).
//! * [`tape`] — a reverse-mode autograd [`Tape`]: build a computation with
//!   tape methods, call [`Tape::backward`], read gradients per variable.
//!   Includes the graph-specific differentiable ops GNNs need (row gather,
//!   scatter-add, segment softmax, segment mean) so both the DGL-style
//!   baseline engine and MEGA's banded engine are expressible.
//! * [`init`] — Xavier/He initializers.
//! * [`optim`] — a parameter store with SGD and Adam.
//!
//! # Example
//!
//! ```
//! use mega_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]));
//! let w = tape.leaf(Tensor::from_rows(&[&[3.0], &[4.0]]));
//! let y = tape.matmul(x, w); // [[11.0]]
//! let loss = tape.sum(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.wrt(x).as_slice(), &[3.0, 4.0]);
//! assert_eq!(grads.wrt(w).as_slice(), &[1.0, 2.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod optim;
mod plan;
pub mod tape;
pub mod tensor;

pub use optim::{Adam, Optimizer, ParamId, ParamStore, Sgd};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;
