//! Graph batching and engine message indices.
//!
//! A [`Batch`] merges several [`GraphSample`]s into one node-id space (the
//! standard block-diagonal batching of GNN frameworks) and builds the
//! [`EngineIndices`] that route messages:
//!
//! * **Baseline**: one message per directed adjacency slot, exactly the DGL
//!   pattern.
//! * **MEGA**: work rows are path positions; one message pair per active band
//!   slot. The attention softmax and the aggregation remain keyed by
//!   *destination node*, so with full edge coverage every node receives
//!   exactly the same multiset of messages as under the baseline — the two
//!   engines are numerically equivalent and only their memory-access shape
//!   differs.

use crate::config::EngineChoice;
use mega_core::AttentionSchedule;
use mega_datasets::{GraphSample, Target};
use std::sync::Arc;

/// Message routing for one batch under one engine.
#[derive(Debug, Clone)]
pub struct EngineIndices {
    /// Which engine these indices express.
    pub engine: EngineChoice,
    /// Total nodes in the batch.
    pub n_nodes: usize,
    /// Rows of the working buffer (nodes for baseline, path positions for
    /// MEGA).
    pub work_rows: usize,
    /// For each work row, the node whose embedding it carries (identity for
    /// baseline).
    pub node_to_work: Arc<Vec<usize>>,
    /// Message source work row.
    pub msg_src_work: Arc<Vec<usize>>,
    /// Message destination work row.
    pub msg_dst_work: Arc<Vec<usize>>,
    /// Message destination *node* row (softmax segments and aggregation).
    pub msg_dst_node: Arc<Vec<usize>>,
    /// Edge-feature vocabulary id per message.
    pub msg_edge_feat: Arc<Vec<usize>>,
}

impl EngineIndices {
    /// Number of messages.
    pub fn msg_count(&self) -> usize {
        self.msg_src_work.len()
    }
}

/// One sample's contribution to a MEGA batch, in sample-local indices.
/// Built independently per sample (so batches can fan construction out
/// across threads) and stitched with running offsets afterwards.
struct MegaSegment {
    node_feats: Vec<usize>,
    /// Sample-local node id per path position.
    node_to_work: Vec<usize>,
    /// `(src_pos, dst_pos, dst_node, edge_feat)` per directed message.
    msgs: Vec<(usize, usize, usize, usize)>,
    n_nodes: usize,
    path_len: usize,
}

impl MegaSegment {
    fn build(s: &GraphSample, sched: &AttentionSchedule) -> Self {
        let g = &s.graph;
        let path = sched.path();
        let node_feats = (0..g.node_count()).map(|v| s.node_features[v]).collect();
        let node_to_work = sched.gather_index().to_vec();
        // Edge ids of the schedule refer to the *working* graph; when no
        // edge dropping is configured that equals the sample graph. Its
        // edge list order matches the sample's edge_features indexing.
        let working_pairs: Vec<(usize, usize)> = sched.working_graph().edges().collect();
        let sample_pairs: Vec<(usize, usize)> = g.edges().collect();
        let mut msgs = Vec::new();
        for slot in sched.band().active_slots() {
            let (a, b) = working_pairs[slot.edge];
            // Map the working-graph edge back to the sample edge id for
            // its feature (identical when nothing was dropped).
            let feat = match sample_pairs
                .iter()
                .position(|&p| p == (a, b) || p == (b, a))
            {
                Some(eid) => s.edge_features[eid],
                None => 0,
            };
            let (lo_node, hi_node) = (path.node_at(slot.lo), path.node_at(slot.hi));
            // Two directed messages per band slot.
            msgs.push((slot.lo, slot.hi, hi_node, feat));
            msgs.push((slot.hi, slot.lo, lo_node, feat));
        }
        MegaSegment {
            node_feats,
            node_to_work,
            msgs,
            n_nodes: g.node_count(),
            path_len: path.len(),
        }
    }
}

/// A merged batch of graphs ready for a forward pass.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Node-feature vocabulary id per node.
    pub node_feats: Arc<Vec<usize>>,
    /// Graph index per node (readout segments).
    pub graph_of_node: Arc<Vec<usize>>,
    /// Node count per graph.
    pub graph_sizes: Vec<usize>,
    /// Per-graph targets.
    pub targets: Vec<Target>,
    /// Message routing.
    pub indices: EngineIndices,
}

impl Batch {
    /// Builds a baseline (DGL-style) batch.
    pub fn baseline(samples: &[GraphSample]) -> Self {
        let mut node_feats = Vec::new();
        let mut graph_of_node = Vec::new();
        let mut graph_sizes = Vec::new();
        let mut targets = Vec::new();
        let mut msg_src = Vec::new();
        let mut msg_dst = Vec::new();
        let mut msg_edge = Vec::new();
        let mut offset = 0usize;
        for (gi, s) in samples.iter().enumerate() {
            let g = &s.graph;
            for v in 0..g.node_count() {
                node_feats.push(s.node_features[v]);
                graph_of_node.push(gi);
                let csr = g.csr();
                for (slot, &u) in csr.neighbors(v).iter().enumerate() {
                    let eid = csr.edge_ids(v)[slot];
                    msg_src.push(offset + u);
                    msg_dst.push(offset + v);
                    msg_edge.push(s.edge_features[eid]);
                }
            }
            graph_sizes.push(g.node_count());
            targets.push(s.target);
            offset += g.node_count();
        }
        let n_nodes = offset;
        let identity: Vec<usize> = (0..n_nodes).collect();
        let msg_dst_rc = Arc::new(msg_dst);
        Batch {
            node_feats: Arc::new(node_feats),
            graph_of_node: Arc::new(graph_of_node),
            graph_sizes,
            targets,
            indices: EngineIndices {
                engine: EngineChoice::Baseline,
                n_nodes,
                work_rows: n_nodes,
                node_to_work: Arc::new(identity),
                msg_src_work: Arc::new(msg_src),
                msg_dst_work: msg_dst_rc.clone(),
                msg_dst_node: msg_dst_rc,
                msg_edge_feat: Arc::new(msg_edge),
            },
        }
    }

    /// Builds a MEGA batch from samples and their preprocessed schedules
    /// (aligned by index).
    ///
    /// # Panics
    ///
    /// Panics if `schedules.len() != samples.len()`.
    pub fn mega(samples: &[GraphSample], schedules: &[AttentionSchedule]) -> Self {
        Self::mega_with(samples, schedules, &mega_core::Parallelism::with_threads(1))
    }

    /// Builds a MEGA batch with per-sample index construction fanned out
    /// across the thread budget of `par`.
    ///
    /// Each sample's segment is built independently (sample-local indices),
    /// then stitched serially in sample order with running node/position
    /// offsets — the result is identical to [`Batch::mega`] for every thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `schedules.len() != samples.len()`.
    pub fn mega_with(
        samples: &[GraphSample],
        schedules: &[AttentionSchedule],
        par: &mega_core::Parallelism,
    ) -> Self {
        assert_eq!(samples.len(), schedules.len(), "one schedule per sample");
        let pairs: Vec<(&GraphSample, &AttentionSchedule)> =
            samples.iter().zip(schedules).collect();
        let segments =
            mega_core::parallel::ordered_map(&pairs, par.effective_threads(), |_, &(s, sched)| {
                MegaSegment::build(s, sched)
            });

        let mut node_feats = Vec::new();
        let mut graph_of_node = Vec::new();
        let mut graph_sizes = Vec::new();
        let mut targets = Vec::new();
        let mut node_to_work = Vec::new();
        let mut msg_src = Vec::new();
        let mut msg_dst = Vec::new();
        let mut msg_dst_node = Vec::new();
        let mut msg_edge = Vec::new();
        let mut node_offset = 0usize;
        let mut pos_offset = 0usize;
        for (gi, (seg, s)) in segments.into_iter().zip(samples).enumerate() {
            node_feats.extend_from_slice(&seg.node_feats);
            graph_of_node.extend(std::iter::repeat_n(gi, seg.n_nodes));
            node_to_work.extend(seg.node_to_work.iter().map(|&v| node_offset + v));
            for &(src, dst, dst_node, feat) in &seg.msgs {
                msg_src.push(pos_offset + src);
                msg_dst.push(pos_offset + dst);
                msg_dst_node.push(node_offset + dst_node);
                msg_edge.push(feat);
            }
            graph_sizes.push(seg.n_nodes);
            targets.push(s.target);
            node_offset += seg.n_nodes;
            pos_offset += seg.path_len;
        }
        Batch {
            node_feats: Arc::new(node_feats),
            graph_of_node: Arc::new(graph_of_node),
            graph_sizes,
            targets,
            indices: EngineIndices {
                engine: EngineChoice::Mega,
                n_nodes: node_offset,
                work_rows: pos_offset,
                node_to_work: Arc::new(node_to_work),
                msg_src_work: Arc::new(msg_src),
                msg_dst_work: Arc::new(msg_dst),
                msg_dst_node: Arc::new(msg_dst_node),
                msg_edge_feat: Arc::new(msg_edge),
            },
        }
    }

    /// Number of graphs in the batch.
    pub fn n_graphs(&self) -> usize {
        self.graph_sizes.len()
    }

    /// Regression targets as a column tensor.
    ///
    /// # Panics
    ///
    /// Panics if any target is a class.
    pub fn regression_targets(&self) -> mega_tensor::Tensor {
        let vals: Vec<f32> = self.targets.iter().map(|t| t.value()).collect();
        mega_tensor::Tensor::from_vec(vals.len(), 1, vals)
    }

    /// Class targets as indices.
    ///
    /// # Panics
    ///
    /// Panics if any target is a regression value.
    pub fn class_targets(&self) -> Vec<usize> {
        self.targets.iter().map(|t| t.class()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_datasets::{zinc, DatasetSpec};

    fn samples() -> Vec<GraphSample> {
        zinc(&DatasetSpec::tiny(1))
            .train
            .into_iter()
            .take(4)
            .collect()
    }

    #[test]
    fn baseline_batch_message_counts() {
        let ss = samples();
        let b = Batch::baseline(&ss);
        let expected_msgs: usize = ss.iter().map(|s| 2 * s.graph.edge_count()).sum();
        assert_eq!(b.indices.msg_count(), expected_msgs);
        let expected_nodes: usize = ss.iter().map(|s| s.graph.node_count()).sum();
        assert_eq!(b.indices.n_nodes, expected_nodes);
        assert_eq!(b.indices.work_rows, expected_nodes);
        assert_eq!(b.n_graphs(), 4);
    }

    #[test]
    fn baseline_messages_stay_within_graph() {
        let ss = samples();
        let b = Batch::baseline(&ss);
        for i in 0..b.indices.msg_count() {
            let s = b.indices.msg_src_work[i];
            let d = b.indices.msg_dst_node[i];
            assert_eq!(
                b.graph_of_node[s], b.graph_of_node[d],
                "message crosses graphs"
            );
        }
    }

    #[test]
    fn mega_batch_has_equal_message_multiset_per_node() {
        let ss = samples();
        let schedules: Vec<_> = ss
            .iter()
            .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
            .collect();
        let base = Batch::baseline(&ss);
        let mega = Batch::mega(&ss, &schedules);
        assert_eq!(base.indices.msg_count(), mega.indices.msg_count());
        // Per destination node: the multiset of (source node, edge feature)
        // must be identical across engines.
        let collect = |b: &Batch| {
            let mut m: std::collections::BTreeMap<usize, Vec<(usize, usize)>> = Default::default();
            for i in 0..b.indices.msg_count() {
                let src_node = b.indices.node_to_work[b.indices.msg_src_work[i]];
                m.entry(b.indices.msg_dst_node[i])
                    .or_default()
                    .push((src_node, b.indices.msg_edge_feat[i]));
            }
            for v in m.values_mut() {
                v.sort_unstable();
            }
            m
        };
        // Baseline work rows are node rows (identity), so node_to_work maps
        // sources correctly for both.
        assert_eq!(collect(&base), collect(&mega));
    }

    #[test]
    fn parallel_batch_construction_matches_serial() {
        let ss = samples();
        let schedules: Vec<_> = ss
            .iter()
            .map(|s| preprocess(&s.graph, &MegaConfig::default()).unwrap())
            .collect();
        let serial = Batch::mega(&ss, &schedules);
        for threads in [1, 2, 4, 8] {
            let par = mega_core::Parallelism::pinned(threads);
            let p = Batch::mega_with(&ss, &schedules, &par);
            assert_eq!(p.node_feats, serial.node_feats, "threads={threads}");
            assert_eq!(p.graph_of_node, serial.graph_of_node);
            assert_eq!(p.graph_sizes, serial.graph_sizes);
            assert_eq!(p.indices.node_to_work, serial.indices.node_to_work);
            assert_eq!(p.indices.msg_src_work, serial.indices.msg_src_work);
            assert_eq!(p.indices.msg_dst_work, serial.indices.msg_dst_work);
            assert_eq!(p.indices.msg_dst_node, serial.indices.msg_dst_node);
            assert_eq!(p.indices.msg_edge_feat, serial.indices.msg_edge_feat);
            assert_eq!(p.indices.work_rows, serial.indices.work_rows);
        }
    }

    #[test]
    fn targets_round_trip() {
        let ss = samples();
        let b = Batch::baseline(&ss);
        let t = b.regression_targets();
        assert_eq!(t.shape(), (4, 1));
        for (i, s) in ss.iter().enumerate() {
            assert_eq!(t.at(i, 0), s.target.value());
        }
    }
}
