//! Ablation: traversal window ω.
//!
//! §III-B/III-C design choice: larger windows cover more of a node's edges
//! per appearance, cutting revisits and path length (lower bound
//! Σ⌈d_i/ω⌉ − n), at the cost of a wider — less dense — diagonal band.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::{revisit_lower_bound, traverse, BandMask, MegaConfig, WindowPolicy};
use mega_graph::generate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    window: usize,
    path_len: usize,
    expansion: f64,
    revisits: usize,
    paper_lower_bound: usize,
    virtual_edges: usize,
    band_density: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let mut rng = StdRng::seed_from_u64(3);
    let g = generate::barabasi_albert(500, 4, &mut rng).unwrap();
    mega_obs::data!(
        "graph: n={} m={} mean degree {:.2} max degree {}\n",
        g.node_count(),
        g.edge_count(),
        g.mean_degree(),
        g.max_degree()
    );
    let mut table = TableWriter::new(&[
        "window",
        "path len",
        "expansion",
        "revisits",
        "paper bound",
        "virtual",
        "band density",
    ]);
    let mut rows = Vec::new();
    for w in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
        let t = traverse(&g, &cfg).unwrap();
        let band = BandMask::from_traversal(&t);
        let bound = revisit_lower_bound(&g.degrees(), w);
        table.row(&[
            w.to_string(),
            t.path.len().to_string(),
            fmt(t.expansion_factor(), 2),
            t.revisits.to_string(),
            bound.to_string(),
            t.virtual_edge_count.to_string(),
            fmt(band.density(), 3),
        ]);
        rows.push(Row {
            window: w,
            path_len: t.path.len(),
            expansion: t.expansion_factor(),
            revisits: t.revisits,
            paper_lower_bound: bound,
            virtual_edges: t.virtual_edge_count,
            band_density: band.density(),
        });
    }
    mega_obs::data!("Ablation — window size ω (BA graph, full coverage)\n");
    table.print();
    mega_obs::data!(
        "\nExpected: revisits and path length fall as ω grows (tracking the paper's\n\
         Σ⌈d_i/ω⌉ − n bound) while the band becomes sparser — the efficiency/coverage\n\
         tradeoff behind adaptive window sizing."
    );
    save_json("ablation_window", &rows);
}
