//! k-hop receptive fields of graphs and path representations.
//!
//! The receptive field `A_k(v)` is the set of nodes whose input features can
//! influence `v`'s embedding after `k` rounds of 1-hop aggregation. For the
//! original graph this is the k-ball around `v`. For MEGA's path
//! representation, aggregation flows along *band slots between path
//! positions*; a node's multiple appearances each accumulate their own
//! receptive field and are merged only at readout, which is exactly where
//! multi-hop information can fall short of the original graph (Fig. 8).

use mega_core::AttentionSchedule;
use mega_graph::Graph;
use std::collections::BTreeSet;

/// `A_k(v)` for every node of `g`: the k-ball around each vertex, including
/// the vertex itself.
pub fn khop_sets(g: &Graph, hops: usize) -> Vec<BTreeSet<usize>> {
    let n = g.node_count();
    let mut sets: Vec<BTreeSet<usize>> = (0..n).map(|v| BTreeSet::from([v])).collect();
    for _ in 0..hops {
        let prev = sets.clone();
        for (v, set) in sets.iter_mut().enumerate() {
            for &u in g.neighbors(v) {
                // v aggregates u's previous-round field.
                set.extend(prev[u].iter().copied());
            }
        }
    }
    sets
}

/// Receptive fields of a MEGA path representation after `hops` rounds of
/// banded aggregation over path positions, merged per node at readout.
///
/// Position `i` aggregates from every position it shares an active band slot
/// with; node `v`'s field is the union over its appearances.
pub fn path_khop_sets(schedule: &AttentionSchedule, hops: usize) -> Vec<BTreeSet<usize>> {
    let path = schedule.path();
    let band = schedule.band();
    let len = path.len();
    // Adjacency between positions: active band slots only.
    let mut pos_adj: Vec<Vec<usize>> = vec![Vec::new(); len];
    for s in band.active_slots() {
        pos_adj[s.lo].push(s.hi);
        pos_adj[s.hi].push(s.lo);
    }
    let mut pos_sets: Vec<BTreeSet<usize>> = (0..len)
        .map(|i| BTreeSet::from([path.node_at(i)]))
        .collect();
    for _ in 0..hops {
        let prev = pos_sets.clone();
        for i in 0..len {
            for &j in &pos_adj[i] {
                let add: Vec<usize> = prev[j].iter().copied().collect();
                pos_sets[i].extend(add);
            }
        }
    }
    let n = path.node_count();
    let mut node_sets: Vec<BTreeSet<usize>> = (0..n).map(|v| BTreeSet::from([v])).collect();
    for (i, set) in pos_sets.into_iter().enumerate() {
        let v = path.node_at(i);
        node_sets[v].extend(set);
    }
    node_sets
}

/// Receptive fields of a MEGA path representation when node appearances are
/// **merged after every hop** (scatter to nodes, re-gather to positions each
/// layer) — the flow model of the trained banded engine in `mega-gnn`. With
/// full edge coverage this is exact at every hop: the banded layer then
/// computes the same neighbor sums as true message passing.
pub fn path_khop_sets_merged(schedule: &AttentionSchedule, hops: usize) -> Vec<BTreeSet<usize>> {
    let path = schedule.path();
    let band = schedule.band();
    let n = path.node_count();
    // Node-level adjacency induced by active band slots.
    let mut node_adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for s in band.active_slots() {
        let (u, v) = (path.node_at(s.lo), path.node_at(s.hi));
        node_adj[u].insert(v);
        node_adj[v].insert(u);
    }
    let mut sets: Vec<BTreeSet<usize>> = (0..n).map(|v| BTreeSet::from([v])).collect();
    for _ in 0..hops {
        let prev = sets.clone();
        for v in 0..n {
            for &u in &node_adj[v] {
                let add: Vec<usize> = prev[u].iter().copied().collect();
                sets[v].extend(add);
            }
        }
    }
    sets
}

/// Jaccard index of two sets; 1.0 when both are empty.
pub fn jaccard(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_core::{preprocess, MegaConfig};
    use mega_graph::generate;

    #[test]
    fn zero_hop_fields_are_singletons() {
        let g = generate::cycle(5).unwrap();
        let sets = khop_sets(&g, 0);
        for (v, s) in sets.iter().enumerate() {
            assert_eq!(s.len(), 1);
            assert!(s.contains(&v));
        }
    }

    #[test]
    fn one_hop_field_is_closed_neighborhood() {
        let g = generate::star(5).unwrap();
        let sets = khop_sets(&g, 1);
        assert_eq!(sets[0].len(), 5); // hub sees everything
        assert_eq!(sets[1].len(), 2); // leaf sees itself and hub
    }

    #[test]
    fn fields_grow_monotonically() {
        let g = generate::path(8).unwrap();
        let mut prev = khop_sets(&g, 0);
        for k in 1..4 {
            let cur = khop_sets(&g, k);
            for v in 0..8 {
                assert!(cur[v].is_superset(&prev[v]));
            }
            prev = cur;
        }
    }

    #[test]
    fn path_one_hop_equals_graph_one_hop() {
        let g = generate::complete(6).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let truth = khop_sets(&g, 1);
        let approx = path_khop_sets(&s, 1);
        assert_eq!(truth, approx);
    }

    #[test]
    fn path_fields_subset_of_graph_fields() {
        let g = generate::barabasi_albert(
            30,
            2,
            &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1),
        )
        .unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        for k in 1..4 {
            let truth = khop_sets(&g, k);
            let approx = path_khop_sets(&s, k);
            for v in 0..g.node_count() {
                assert!(
                    approx[v].is_subset(&truth[v]),
                    "hop {k}, node {v}: path field not a subset"
                );
            }
        }
    }

    #[test]
    fn jaccard_bounds() {
        let a: BTreeSet<usize> = [1, 2, 3].into();
        let b: BTreeSet<usize> = [2, 3, 4].into();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }
}
