//! `mega` — command-line interface for the MEGA graph-attention toolkit.
//!
//! ```text
//! mega demo                               # preprocess the paper's demo graph
//! mega preprocess graph.txt --window 2    # preprocess an edge-list file
//! mega stats --dataset all                # Table II/III statistics
//! mega train --dataset zinc --model gt --engine mega --epochs 5
//! mega profile --dataset zinc --model gt  # instrumented training + kernels
//! ```

mod args;
mod commands;
mod report;

use args::Args;
use mega_obs::{data, error};
use std::process::ExitCode;

const USAGE: &str = "\
mega — More Efficient Graph Attention toolkit

USAGE:
    mega <command> [options]

COMMANDS:
    demo                      Preprocess the paper's Fig. 3a demo graph
    preprocess <edge-list>    Preprocess a graph file (one `src dst` per line)
        --window N            fixed traversal window (default: adaptive)
        --coverage F          edge coverage target in (0,1] (default 1.0)
        --drop F              edge-drop fraction in [0,1) (default 0)
        --json                emit the schedule stats as JSON
    stats                     Dataset statistics (Tables II/III)
        --dataset NAME        zinc | aqsol | csl | cycles | all (default all)
    train                     Train a model under one engine
        --dataset NAME        zinc | aqsol | csl | cycles (default zinc)
        --model NAME          gcn | gt | gat (default gcn)
        --engine NAME         dgl | mega (default mega)
        --backend NAME        kernel backend: reference | blocked | simd |
                              sim[:inner] | profiled[:inner]
                              (default reference). All backends are
                              bit-identical; `blocked` uses cache-tiled
                              GEMMs, `sim` wraps reference and prints a
                              simulated GTX 1080 kernel report after
                              training, `profiled` wraps another backend
                              and attributes FLOPs/bytes/time per kernel
                              into the metrics registry (see `mega report`).
        --epochs N            (default 5)   --batch N   (default 32)
        --hidden N            (default 32)  --lr F      (default 0.005)
        --no-plan             disable the tape planner (op fusion + pack
                              caching; on by default). Bit-identical either
                              way — the eager path is the planner's
                              exactness oracle.
        --threads N           CPU worker threads for preprocessing, batching
                              and tape matmuls; 0 = auto from
                              RAYON_NUM_THREADS or the hardware (default 1).
                              Results are bit-identical for every value.
        --workers N           run the distributed trainer: shard each
                              optimizer step across N worker threads and
                              all-reduce the gradients in a fixed order. The
                              trajectory is bit-identical for every N >= 1.
                              Omit the flag for the plain whole-batch
                              trainer (different batch-norm statistics, so a
                              different — equally deterministic — run).
        --trace-out FILE      write a Chrome-trace JSON of the run
        --metrics-out FILE    write a deterministic metrics snapshot JSON
    profile                   Instrumented training run + simulated GTX 1080
                              kernel profile, both engines; prints the span
                              tree of where host time went
        --dataset NAME        (default zinc)  --model NAME (default gt)
        --batch N             (default 64)    --hidden N   (default 64)
        --epochs N            epochs to train under instrumentation (default 2)
        --threads N           (default 1)
        --trace-out FILE      write a Chrome-trace JSON of the run
        --metrics-out FILE    write a deterministic metrics snapshot JSON
    report <snapshot.json>    Render a markdown performance report from a
                              metrics snapshot: per-kernel roofline table
                              (from `--backend profiled` runs), buffer-pool
                              residency, traversal locality, training
                              health, and spans
        --baseline FILE       diff against an earlier snapshot, or place a
                              bench_results/backend_matmul.json sweep on
                              the GEMM roof
        --out FILE            write the markdown to FILE instead of stdout
        --calibration FILE    load roofs from FILE (or save, with --calibrate)
        --calibrate           measure machine roofs now instead of using
                              the fixed deterministic reference roofs
        --calibrate-backend N backend to calibrate on (default simd)

GLOBAL OPTIONS:
    --quiet                   suppress status messages (data output only);
                              MEGA_LOG=quiet|info|debug sets the same level
";

fn main() -> ExitCode {
    mega_obs::report::init_from_env();
    let mut raw = std::env::args().skip(1).peekable();
    let Some(command) = raw.next() else {
        // mega-lint: allow(obs-routing, reason = "usage text on stderr is the CLI's error surface, not telemetry")
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::parse(raw);
    if args.has_flag("quiet") {
        mega_obs::report::set_level(mega_obs::report::Level::Quiet);
    }
    let result = match command.as_str() {
        "demo" => commands::demo(),
        "preprocess" => commands::preprocess(&args),
        "stats" => commands::stats(&args),
        "train" => commands::train(&args),
        "profile" => commands::profile(&args),
        "report" => report::report(&args),
        "help" | "--help" | "-h" => {
            data!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; run `mega help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            error!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
