// `float-reassoc` fixture: turbofish float folds, verdict depends on path.
pub fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}

pub fn product(xs: &[f64]) -> f64 {
    xs.iter().product::<f64>()
}
