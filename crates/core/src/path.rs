//! The path representation of a graph (paper Fig. 7).
//!
//! A [`PathRepresentation`] is the reordered sequence of node appearances
//! produced by the traversal, together with virtual-edge marks and per-node
//! position lists. Embeddings laid out in this order are accessed strictly
//! sequentially during banded attention.

use crate::traversal::Traversal;
use serde::{Deserialize, Serialize};

/// A graph reorganized as a path of node appearances.
///
/// # Example
///
/// ```
/// use mega_core::{traverse, MegaConfig, PathRepresentation};
/// use mega_graph::generate;
///
/// # fn main() -> Result<(), mega_core::MegaError> {
/// let g = generate::cycle(6).unwrap();
/// let t = traverse(&g, &MegaConfig::default())?;
/// let p = PathRepresentation::from_traversal(&t);
/// assert_eq!(p.node_count(), 6);
/// assert!(p.len() >= 6);
/// // Every node appears at least once.
/// assert!(p.node_positions().iter().all(|ps| !ps.is_empty()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathRepresentation {
    path: Vec<usize>,
    virtual_step: Vec<bool>,
    node_positions: Vec<Vec<usize>>,
    window: usize,
}

impl PathRepresentation {
    /// Builds the representation from a finished traversal.
    pub fn from_traversal(t: &Traversal) -> Self {
        let n = t.working_graph.node_count();
        let mut node_positions = vec![Vec::new(); n];
        for (i, &v) in t.path.iter().enumerate() {
            node_positions[v].push(i);
        }
        PathRepresentation {
            path: t.path.clone(),
            virtual_step: t.virtual_step.clone(),
            node_positions,
            window: t.window,
        }
    }

    /// Number of path positions (node appearances), `L`.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Whether the path is empty.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// Number of distinct nodes, `n`.
    pub fn node_count(&self) -> usize {
        self.node_positions.len()
    }

    /// The window ω the path was built for.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The node id at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn node_at(&self, i: usize) -> usize {
        self.path[i]
    }

    /// The full position→node sequence.
    pub fn nodes(&self) -> &[usize] {
        &self.path
    }

    /// Per-node sorted position lists: `node_positions()[v]` are the path
    /// positions where node `v` appears.
    pub fn node_positions(&self) -> &[Vec<usize>] {
        &self.node_positions
    }

    /// Positions of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn positions_of(&self, v: usize) -> &[usize] {
        &self.node_positions[v]
    }

    /// Number of appearances of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= node_count()`.
    pub fn appearance_count(&self, v: usize) -> usize {
        self.node_positions[v].len()
    }

    /// Whether the step into position `i` rides a virtual edge.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn is_virtual_step(&self, i: usize) -> bool {
        self.virtual_step[i]
    }

    /// Total revisits: `len() - node_count()` (every appearance past a node's
    /// first), saturating at 0 for paths that omit isolated nodes.
    pub fn revisit_count(&self) -> usize {
        self.path
            .len()
            .saturating_sub(self.node_positions.iter().filter(|p| !p.is_empty()).count())
    }

    /// Number of virtual steps in the path.
    pub fn virtual_edge_count(&self) -> usize {
        self.virtual_step.iter().filter(|&&b| b).count()
    }

    /// `L / n`: the memory-expansion factor of the representation.
    pub fn expansion_factor(&self) -> f64 {
        if self.node_count() == 0 {
            return 1.0;
        }
        self.len() as f64 / self.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MegaConfig, WindowPolicy};
    use crate::traversal::traverse;
    use mega_graph::generate;

    fn rep(g: &mega_graph::Graph, w: usize) -> PathRepresentation {
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(w));
        PathRepresentation::from_traversal(&traverse(g, &cfg).unwrap())
    }

    #[test]
    fn positions_are_consistent() {
        let g = generate::complete(6).unwrap();
        let p = rep(&g, 2);
        for v in 0..6 {
            for &i in p.positions_of(v) {
                assert_eq!(p.node_at(i), v);
            }
        }
        let total: usize = (0..6).map(|v| p.appearance_count(v)).sum();
        assert_eq!(total, p.len());
    }

    #[test]
    fn revisit_count_matches_traversal() {
        let g = generate::complete(8).unwrap();
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(1));
        let t = traverse(&g, &cfg).unwrap();
        let p = PathRepresentation::from_traversal(&t);
        assert_eq!(p.revisit_count(), t.revisits);
        assert_eq!(p.virtual_edge_count(), t.virtual_edge_count);
    }

    #[test]
    fn expansion_factor_at_least_one() {
        for n in [3usize, 7, 12] {
            let g = generate::cycle(n).unwrap();
            let p = rep(&g, 1);
            assert!(p.expansion_factor() >= 1.0);
        }
    }

    #[test]
    fn first_step_never_virtual() {
        let g = generate::path(5).unwrap();
        let p = rep(&g, 1);
        assert!(!p.is_virtual_step(0));
    }
}
