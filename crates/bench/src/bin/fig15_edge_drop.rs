//! Figure 15: AQSOL with edge dropping enabled.
//!
//! 20% of edges are dropped in every graph's path representation (§IV-B5);
//! the path shrinks, epochs get cheaper, and accuracy holds — the paper
//! reports a 5.9× end-to-end speedup over the DGL baseline at equal accuracy.

use mega_bench::{fmt, save_json, TableWriter};
use mega_core::MegaConfig;
use mega_datasets::{aqsol, DatasetSpec};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer, TrainingHistory};
use serde::Serialize;

#[derive(Serialize)]
struct Result {
    variant: String,
    epoch_sim_seconds: f64,
    final_val_loss: f64,
    final_val_mae: f64,
    speedup_vs_dgl: f64,
    convergence_speedup_vs_dgl: f64,
    history: TrainingHistory,
}

fn main() {
    mega_obs::report::init_from_env();
    let spec = DatasetSpec::small(15);
    let ds = aqsol(&spec);
    let cfg = GnnConfig::new(ModelKind::GraphTransformer, ds.node_vocab, ds.edge_vocab, 1)
        .with_hidden(64)
        .with_layers(2)
        .with_heads(4)
        .with_seed(15);
    let epochs = 15;
    let batch = 64;

    mega_obs::info!("training DGL baseline...");
    let dgl = Trainer::new(EngineChoice::Baseline)
        .with_epochs(epochs)
        .with_batch_size(batch)
        .run(&ds, cfg.clone());
    mega_obs::info!("training Mega (full coverage)...");
    let mega = Trainer::new(EngineChoice::Mega)
        .with_epochs(epochs)
        .with_batch_size(batch)
        .run(&ds, cfg.clone());
    mega_obs::info!("training Mega + 20% edge dropping...");
    let mega_drop = Trainer::new(EngineChoice::Mega)
        .with_epochs(epochs)
        .with_batch_size(batch)
        .with_mega_config(MegaConfig::default().with_edge_drop(0.2))
        .run(&ds, cfg);

    let base_epoch = dgl.epoch_sim_seconds;
    // Convergence speedup: simulated time for the baseline to reach its best
    // validation loss vs the variant's time to reach the same level.
    let target = dgl.best_val_loss() * 1.02;
    let base_time = dgl.sim_seconds_to_loss(target).unwrap_or(f64::INFINITY);
    let mut table = TableWriter::new(&[
        "variant",
        "epoch sim(ms)",
        "final val loss",
        "final MAE",
        "epoch speedup",
        "convergence speedup",
    ]);
    let mut results = Vec::new();
    for (name, h) in [
        ("DGL", &dgl),
        ("Mega", &mega),
        ("Mega + drop 20%", &mega_drop),
    ] {
        let last = h.records.last().unwrap();
        let speedup = base_epoch / h.epoch_sim_seconds;
        let conv_speedup = h
            .sim_seconds_to_loss(target)
            .map(|t| base_time / t)
            .unwrap_or(speedup);
        table.row(&[
            name.to_string(),
            fmt(h.epoch_sim_seconds * 1e3, 2),
            fmt(last.val_loss, 4),
            fmt(last.val_metric, 4),
            format!("{speedup:.2}x"),
            format!("{conv_speedup:.2}x"),
        ]);
        results.push(Result {
            variant: name.to_string(),
            epoch_sim_seconds: h.epoch_sim_seconds,
            final_val_loss: last.val_loss,
            final_val_mae: last.val_metric,
            speedup_vs_dgl: speedup,
            convergence_speedup_vs_dgl: conv_speedup,
            history: h.clone(),
        });
    }
    mega_obs::data!("Figure 15 — AQSOL with edge dropping (GT, hidden 64)\n");
    table.print();
    mega_obs::data!(
        "\nPaper claim: Mega with 20% edge dropping reaches ~5.9x speedup over the baseline\n\
         at the same accuracy level (the drop also regularizes, DropEdge-style)."
    );
    save_json("fig15_edge_drop", &results);
}
