//! MEGA: More Efficient Graph Attention for GNNs — facade crate.
//!
//! Re-exports the workspace crates under one roof. See the individual crates
//! for detailed documentation:
//!
//! * [`graph`] — graph data structures, statistics, generators.
//! * [`core`] — the MEGA contribution: objective traversal, path
//!   representation, adaptive window, banded attention layout.
//! * [`wl`] — Weisfeiler-Lehman isomorphism scoring.
//! * [`tensor`] — dense tensors with reverse-mode autograd and optimizers.
//! * [`gnn`] — GatedGCN and Graph Transformer models with baseline
//!   (scatter/gather) and MEGA (banded) execution engines.
//! * [`datasets`] — synthetic ZINC/AQSOL/CSL/CYCLES-like dataset generators.
//! * [`gpu_sim`] — GPU memory-system simulator and nvprof-style profiler.
//! * [`dist`] — distributed partitioning and communication-volume analysis.

pub use mega_core as core;
pub use mega_datasets as datasets;
pub use mega_dist as dist;
pub use mega_exec as exec;
pub use mega_gnn as gnn;
pub use mega_gpu_sim as gpu_sim;
pub use mega_graph as graph;
pub use mega_obs as obs;
pub use mega_tensor as tensor;
pub use mega_wl as wl;
