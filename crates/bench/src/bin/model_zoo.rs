//! Extension experiment: the engine comparison across the full model zoo —
//! GatedGCN, Graph Transformer, and GAT (the canonical graph-attention layer
//! the paper cites as \[14\]).
//!
//! Epoch cost under both engines plus a short real training run per model,
//! confirming that MEGA's advantage and its numerical equivalence are
//! architecture-independent properties of the banded message routing.

use mega_bench::{fmt, save_json, TableWriter};
use mega_datasets::{zinc, DatasetSpec};
use mega_gnn::{EngineChoice, GnnConfig, ModelKind, Trainer};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    dgl_epoch_ms: f64,
    mega_epoch_ms: f64,
    speedup: f64,
    dgl_final_mae: f64,
    mega_final_mae: f64,
}

fn main() {
    mega_obs::report::init_from_env();
    let ds = zinc(&DatasetSpec {
        train: 256,
        val: 64,
        test: 64,
        seed: 33,
    });
    let mut table = TableWriter::new(&[
        "model",
        "DGL epoch(ms)",
        "Mega epoch(ms)",
        "speedup",
        "DGL MAE",
        "Mega MAE",
    ]);
    let mut rows = Vec::new();
    for kind in [
        ModelKind::GatedGcn,
        ModelKind::GraphTransformer,
        ModelKind::Gat,
    ] {
        mega_obs::info!("training {}...", kind.label());
        let cfg = GnnConfig::new(kind, ds.node_vocab, ds.edge_vocab, 1)
            .with_hidden(32)
            .with_layers(2)
            .with_heads(4)
            .with_seed(5);
        let dgl = Trainer::new(EngineChoice::Baseline)
            .with_epochs(8)
            .with_batch_size(32)
            .run(&ds, cfg.clone());
        let mega = Trainer::new(EngineChoice::Mega)
            .with_epochs(8)
            .with_batch_size(32)
            .run(&ds, cfg);
        let speedup = dgl.epoch_sim_seconds / mega.epoch_sim_seconds;
        let (dl, ml) = (dgl.records.last().unwrap(), mega.records.last().unwrap());
        table.row(&[
            kind.label().to_string(),
            fmt(dgl.epoch_sim_seconds * 1e3, 2),
            fmt(mega.epoch_sim_seconds * 1e3, 2),
            format!("{speedup:.2}x"),
            fmt(dl.val_metric, 4),
            fmt(ml.val_metric, 4),
        ]);
        rows.push(Row {
            model: kind.label().to_string(),
            dgl_epoch_ms: dgl.epoch_sim_seconds * 1e3,
            mega_epoch_ms: mega.epoch_sim_seconds * 1e3,
            speedup,
            dgl_final_mae: dl.val_metric,
            mega_final_mae: ml.val_metric,
        });
    }
    mega_obs::data!("Model zoo — Mega vs DGL across architectures (ZINC, hidden 32)\n");
    table.print();
    mega_obs::data!(
        "\nExpected: every architecture trains to the same quality under both engines,\n\
         and every one runs faster under Mega — the banded routing is model-agnostic."
    );
    save_json("model_zoo", &rows);
}
