//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, deterministic implementation of the `rand 0.8` API surface it
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality,
//! fast, and fully deterministic. Streams do **not** match upstream `rand`
//! bit-for-bit (nothing in this workspace depends on upstream streams, only
//! on seed-determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from a uniform word stream via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over an interval.
///
/// A single blanket impl of [`SampleRange`] over this trait (rather than one
/// impl per concrete type) is what lets integer-literal ranges like `2..=5`
/// infer their type from surrounding usage, as with upstream `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = <f64 as Standard>::sample(rng);
                let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                // Clamp against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let unit = <f64 as Standard>::sample(rng);
                (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing generator extension methods.
pub trait Rng: RngCore {
    /// Draws a value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} not in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..64).all(|_| !r.gen_bool(0.0)));
        assert!((0..64).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
