//! The preprocessed attention schedule consumed by training.
//!
//! [`AttentionSchedule`] bundles everything the downstream engines need:
//! the path layout (for gathering node embeddings into path order and
//! scattering results back), the band mask (which in-band pairs participate
//! in attention and which edge-feature row each uses), and the working graph.
//! It is the concrete artifact of the paper's CPU-side preprocessing stage,
//! decoupled from the GPU-side training loop.

use crate::band::BandMask;
use crate::path::PathRepresentation;
use crate::traversal::Traversal;
use mega_graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a preprocessing run, for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Node count of the working graph.
    pub nodes: usize,
    /// Edge count of the working graph (post edge-drop).
    pub edges: usize,
    /// Path length `L`.
    pub path_len: usize,
    /// Window ω.
    pub window: usize,
    /// Revisit count (`L` minus distinct nodes appearing).
    pub revisits: usize,
    /// Virtual-edge (jump) count.
    pub virtual_edges: usize,
    /// Fraction of working edges owning a band slot.
    pub coverage: f64,
    /// Memory-expansion factor `L / n`.
    pub expansion: f64,
    /// Active-slot density of the band.
    pub band_density: f64,
}

/// The full preprocessing artifact: path + band + working graph.
///
/// # Example
///
/// ```
/// use mega_core::{preprocess, MegaConfig};
/// use mega_graph::generate;
///
/// # fn main() -> Result<(), mega_core::MegaError> {
/// let g = generate::complete(6).unwrap();
/// let s = preprocess(&g, &MegaConfig::default())?;
/// let stats = s.stats();
/// assert_eq!(stats.nodes, 6);
/// assert!((stats.coverage - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttentionSchedule {
    path: PathRepresentation,
    band: BandMask,
    working_graph: Graph,
    revisits: usize,
    virtual_edges: usize,
}

impl AttentionSchedule {
    /// Assembles the schedule from a finished traversal. The `original`
    /// graph is accepted for interface symmetry with [`crate::preprocess`];
    /// the schedule itself references the traversal's working graph (which
    /// differs from `original` only under edge dropping).
    pub fn from_traversal(_original: &Graph, t: Traversal) -> Self {
        let path = PathRepresentation::from_traversal(&t);
        let band = BandMask::from_traversal(&t);
        AttentionSchedule {
            path,
            band,
            revisits: t.revisits,
            virtual_edges: t.virtual_edge_count,
            working_graph: t.working_graph,
        }
    }

    /// The path layout.
    pub fn path(&self) -> &PathRepresentation {
        &self.path
    }

    /// The band mask.
    pub fn band(&self) -> &BandMask {
        &self.band
    }

    /// The working graph the schedule was built over (post edge-drop).
    pub fn working_graph(&self) -> &Graph {
        &self.working_graph
    }

    /// Gather index: for each path position, the node whose embedding is
    /// loaded there. Identical to `path().nodes()`, exposed under the name
    /// the engines use.
    pub fn gather_index(&self) -> &[usize] {
        self.path.nodes()
    }

    /// Scatter index: for each node, the path positions whose aggregated
    /// messages are summed back into it.
    pub fn scatter_index(&self) -> &[Vec<usize>] {
        self.path.node_positions()
    }

    /// Summary statistics.
    pub fn stats(&self) -> ScheduleStats {
        ScheduleStats {
            nodes: self.working_graph.node_count(),
            edges: self.working_graph.edge_count(),
            path_len: self.path.len(),
            window: self.path.window(),
            revisits: self.revisits,
            virtual_edges: self.virtual_edges,
            coverage: self.band.coverage(),
            expansion: self.path.expansion_factor(),
            band_density: self.band.density(),
        }
    }
}

#[cfg(test)]
mod tests {

    use crate::config::{MegaConfig, WindowPolicy};
    use crate::preprocess;
    use mega_graph::generate;

    #[test]
    fn schedule_indices_are_consistent() {
        let g = generate::complete(7).unwrap();
        let s = preprocess(&g, &MegaConfig::default()).unwrap();
        let gather = s.gather_index();
        for (v, positions) in s.scatter_index().iter().enumerate() {
            for &p in positions {
                assert_eq!(gather[p], v);
            }
        }
    }

    #[test]
    fn stats_reflect_traversal() {
        let g = generate::complete(7).unwrap();
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(2));
        let s = preprocess(&g, &cfg).unwrap();
        let st = s.stats();
        assert_eq!(st.nodes, 7);
        assert_eq!(st.edges, 21);
        assert_eq!(st.window, 2);
        assert_eq!(st.path_len, s.path().len());
        assert!(st.expansion >= 1.0);
        assert!((st.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_drop_schedule_references_working_graph() {
        let g = generate::complete(10).unwrap(); // 45 edges
        let cfg = MegaConfig::default().with_edge_drop(0.2);
        let s = preprocess(&g, &cfg).unwrap();
        assert_eq!(s.working_graph().edge_count(), 36);
        assert_eq!(s.band().covered_edge_count(), 36);
    }
}
