//! Minimal flag parser (no external dependencies).
//!
//! Supports `--key value` and `--flag` styles plus positional arguments.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments. Tokens starting with `--` become options when
    /// followed by a non-`--` value, otherwise flags.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let tokens: Vec<String> = raw.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                let value_next = tokens.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                match value_next {
                    Some(v) => {
                        args.options.insert(name.to_string(), v);
                        i += 2;
                    }
                    None => {
                        args.flags.push(name.to_string());
                        i += 1;
                    }
                }
            } else {
                args.positional.push(t.clone());
                i += 1;
            }
        }
        args
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn positional_and_options() {
        // `--name value` always consumes the next non-`--` token, so bare
        // flags go last (documented parser semantics).
        let a = parse("train graph.txt --epochs 5 --verbose");
        assert_eq!(a.positional(), ["train", "graph.txt"]);
        assert_eq!(a.get("epochs"), Some("5"));
        assert!(a.has_flag("verbose"));
    }

    #[test]
    fn typed_defaults() {
        let a = parse("--batch 16");
        assert_eq!(a.get_or("batch", 8usize).unwrap(), 16);
        assert_eq!(a.get_or("hidden", 32usize).unwrap(), 32);
        assert!(a.get_or::<usize>("batch", 0).is_ok());
        let b = parse("--batch nope");
        assert!(b.get_or::<usize>("batch", 0).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse("demo --json");
        assert!(a.has_flag("json"));
        assert_eq!(a.positional(), ["demo"]);
    }
}
