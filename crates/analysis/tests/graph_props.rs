//! Property tests for the call-graph extractor.
//!
//! The extractor is a token-level state machine, not a parser, so its
//! contract is framed as properties over *arbitrary* item/call/module
//! structures rather than a grammar: it must be total (never panic, on
//! garbage included), deterministic (same source → same graph, same
//! findings), complete over `fn` items (every generated fn is recorded
//! exactly once, however deeply mods/impls nest and however names shadow),
//! and cycle-safe (call cycles, `include!` cycles, self-includes).

use mega_analysis::graph::Graph;
use mega_analysis::{analyze_sources, scan};
use proptest::prelude::*;

/// A tiny name pool — deliberately small so generated structures shadow
/// names across mods, impls, and files.
const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

#[derive(Clone, Debug)]
enum Stmt {
    /// `name();`
    Bare(usize),
    /// `owner::name();`
    Qualified(usize, usize),
    /// `x.name();`
    Method(usize),
    /// `x.unwrap();`
    Panic,
    /// `std::time::Instant::now();`
    Source,
    /// `let _g = mega_obs::span("p");`
    Span,
    /// `unsafe { raw() }`
    Unsafe,
}

#[derive(Clone, Debug)]
enum Item {
    Fn {
        name: usize,
        public: bool,
        stmts: Vec<Stmt>,
    },
    Mod {
        name: usize,
        items: Vec<Item>,
    },
    Impl {
        owner: usize,
        fns: Vec<(usize, Vec<Stmt>)>,
    },
}

/// Number of `fn` items in a tree (what the extractor must recover).
fn fn_count(items: &[Item]) -> usize {
    items
        .iter()
        .map(|it| match it {
            Item::Fn { .. } => 1,
            Item::Mod { items, .. } => fn_count(items),
            Item::Impl { fns, .. } => fns.len(),
        })
        .sum()
}

fn render_stmts(stmts: &[Stmt], out: &mut String, indent: usize) {
    for s in stmts {
        out.push_str(&" ".repeat(indent));
        match s {
            Stmt::Bare(n) => out.push_str(&format!("{}();\n", NAMES[*n])),
            Stmt::Qualified(m, n) => out.push_str(&format!("{}::{}();\n", NAMES[*m], NAMES[*n])),
            Stmt::Method(n) => out.push_str(&format!("x.{}();\n", NAMES[*n])),
            Stmt::Panic => out.push_str("x.unwrap();\n"),
            Stmt::Source => out.push_str("std::time::Instant::now();\n"),
            Stmt::Span => out.push_str("let _g = mega_obs::span(\"p\");\n"),
            Stmt::Unsafe => out.push_str("unsafe { raw() }\n"),
        }
    }
}

fn render_items(items: &[Item], out: &mut String, indent: usize) {
    for it in items {
        let pad = " ".repeat(indent);
        match it {
            Item::Fn {
                name,
                public,
                stmts,
            } => {
                let vis = if *public { "pub " } else { "" };
                out.push_str(&format!("{pad}{vis}fn {}() {{\n", NAMES[*name]));
                render_stmts(stmts, out, indent + 4);
                out.push_str(&format!("{pad}}}\n"));
            }
            Item::Mod { name, items } => {
                out.push_str(&format!("{pad}mod {} {{\n", NAMES[*name]));
                render_items(items, out, indent + 4);
                out.push_str(&format!("{pad}}}\n"));
            }
            Item::Impl { owner, fns } => {
                out.push_str(&format!("{pad}impl {} {{\n", NAMES[*owner].to_uppercase()));
                for (name, stmts) in fns {
                    out.push_str(&format!("{pad}    pub fn {}(&self) {{\n", NAMES[*name]));
                    render_stmts(stmts, out, indent + 8);
                    out.push_str(&format!("{pad}    }}\n"));
                }
                out.push_str(&format!("{pad}}}\n"));
            }
        }
    }
}

fn render(items: &[Item]) -> String {
    let mut out = String::new();
    render_items(items, &mut out, 0);
    out
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0usize..4).prop_map(Stmt::Bare),
        (0usize..4, 0usize..4).prop_map(|(m, n)| Stmt::Qualified(m, n)),
        (0usize..4).prop_map(Stmt::Method),
        Just(Stmt::Panic),
        Just(Stmt::Source),
        Just(Stmt::Span),
        Just(Stmt::Unsafe),
    ]
}

fn arb_fn() -> impl Strategy<Value = Item> {
    (
        0usize..4,
        0usize..2,
        proptest::collection::vec(arb_stmt(), 0..4),
    )
        .prop_map(|(name, vis, stmts)| Item::Fn {
            name,
            public: vis == 1,
            stmts,
        })
}

fn arb_impl() -> impl Strategy<Value = Item> {
    (
        0usize..4,
        proptest::collection::vec(
            (0usize..4, proptest::collection::vec(arb_stmt(), 0..3)),
            0..3,
        ),
    )
        .prop_map(|(owner, fns)| Item::Impl { owner, fns })
}

/// Top-level items: fns, impls, and mods one level deep (which may again
/// contain fns and impls — enough nesting to exercise the scope stack and
/// name shadowing without unbounded recursion).
fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    let leaf = || prop_oneof![arb_fn(), arb_impl()];
    let item = prop_oneof![
        arb_fn(),
        arb_impl(),
        (0usize..4, proptest::collection::vec(leaf(), 0..4))
            .prop_map(|(name, items)| Item::Mod { name, items }),
    ];
    proptest::collection::vec(item, 0..6)
}

/// Builds the graph for one rendered file at a fixed path.
fn build(src: &str) -> Graph {
    let lines = scan::strip(src);
    Graph::build(&[("crates/core/src/gen.rs", "crates/core/src/gen.rs", &lines)])
}

/// A graph rendered to a comparable string (the extractor's full output).
fn fingerprint(g: &Graph) -> String {
    format!("{:?}\n{:?}\n{:?}", g.fns, g.edges, g.static_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn extraction_is_total_and_deterministic(items in arb_items()) {
        let src = render(&items);
        let a = build(&src);
        let b = build(&src);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn every_generated_fn_is_recorded_exactly_once(items in arb_items()) {
        let src = render(&items);
        let g = build(&src);
        prop_assert_eq!(
            g.fns.len(),
            fn_count(&items),
            "expected every fn item in:\n{}",
            src
        );
        // Every recorded fn points at a real definition line and carries
        // the name the generator gave it.
        let lines: Vec<&str> = src.lines().collect();
        for f in &g.fns {
            prop_assert!(f.line >= 1 && f.line <= lines.len());
            prop_assert!(lines[f.line - 1].contains(&format!("fn {}", f.name)));
        }
    }

    #[test]
    fn call_cycles_and_self_calls_terminate(items in arb_items()) {
        // Append a guaranteed cycle (a → b → a → a) on shadowed pool names
        // to whatever the generator produced, then walk reachability from
        // every fn: BFS must terminate and stay in-bounds.
        let mut src = render(&items);
        src.push_str("fn alpha() { beta(); alpha(); }\nfn beta() { alpha(); }\n");
        let g = build(&src);
        for start in 0..g.fns.len() {
            let parents = g.reach([start], false, |_| false);
            prop_assert_eq!(parents.len(), g.fns.len());
            for (i, p) in parents.iter().enumerate() {
                if let Some(p) = p {
                    // Parent chains stay inside the reached set.
                    prop_assert!(*p == i || parents[*p].is_some());
                }
            }
        }
    }

    #[test]
    fn whole_pipeline_is_total_on_random_multi_file_sets(
        trees in proptest::collection::vec(arb_items(), 1..4),
        links in proptest::collection::vec((0usize..4, 0usize..4), 0..4),
    ) {
        // Random files plus random `include!` lines between them — possibly
        // self-referential or cyclic. The analyzer must neither panic nor
        // diverge, and two runs must agree finding-for-finding.
        let mut sources: Vec<(String, String, String)> = trees
            .iter()
            .enumerate()
            .map(|(i, items)| {
                let p = format!("crates/core/src/gen{i}.rs");
                (p.clone(), p, render(items))
            })
            .collect();
        for (from, to) in &links {
            if let Some(s) = sources.get_mut(from % trees.len()) {
                s.2.push_str(&format!("include!(\"gen{}.rs\");\n", to % trees.len()));
            }
        }
        let a = analyze_sources(&sources, "", "");
        let b = analyze_sources(&sources, "", "");
        prop_assert_eq!(&a.findings, &b.findings);
        prop_assert_eq!(&a.unsafe_reach, &b.unsafe_reach);
        for f in &a.findings {
            prop_assert!(f.line >= 1, "findings are 1-based: {:?}", f);
        }
    }
}
