//! Figure 1b: graph attention vs global attention time ratio.
//!
//! Both attentions are simulated on the GTX 1080 model for random graphs of
//! fixed sparsity. Graph attention performs *less* computation but pays
//! scattered memory access; as the graph grows past the L2 working set the
//! ratio `t_graph / t_global` rises above 1 and keeps growing — the paper's
//! motivation figure. Smaller feature dimensions aggravate the ratio (wasted
//! sector bytes, lower arithmetic intensity of the dense path).

use mega_bench::{fmt, save_json, TableWriter};
use mega_gpu_sim::{DeviceConfig, KernelKind, Profiler};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    nodes: usize,
    feat_dim: usize,
    edges: usize,
    graph_seconds: f64,
    global_seconds: f64,
    ratio: f64,
}

/// One graph-attention pass: gather source rows, gather destination rows,
/// scatter-add messages — the three index-driven kernels of a DGL layer.
fn graph_attention_seconds(n: usize, m: usize, feat: usize, rng: &mut StdRng) -> f64 {
    let mut p = Profiler::new(DeviceConfig::gtx_1080());
    let nodes = p.alloc(n * feat * 4);
    let keys = p.alloc(2 * m * 4);
    let src: Vec<usize> = (0..2 * m).map(|_| rng.gen_range(0..n)).collect();
    let dst: Vec<usize> = (0..2 * m).map(|_| rng.gen_range(0..n)).collect();
    // The DGL baseline sorts embeddings by index before fetching neighbors.
    p.launch_sort(keys, 2 * m);
    p.launch_gather(nodes, &src, feat, 2 * m);
    p.launch_gather(nodes, &dst, feat, 2 * m);
    p.launch_scatter(nodes, &dst, feat, n);
    p.elapsed_seconds()
}

/// One global-attention pass: `S = H·Hᵀ` (n×n×f), softmax over n², `O = S·H`
/// (n×f×n) — all dense.
fn global_attention_seconds(n: usize, feat: usize) -> f64 {
    let mut p = Profiler::new(DeviceConfig::gtx_1080());
    let h = p.alloc(n * feat * 4);
    let s = p.alloc(n * n * 4);
    let o = p.alloc(n * feat * 4);
    p.launch_sgemm(h, h, s, n, n, feat);
    p.launch_elementwise(s, n * n, 8); // softmax
    p.launch_sgemm(s, h, o, n, feat, n);
    p.elapsed_seconds()
}

fn main() {
    mega_obs::report::init_from_env();
    const SPARSITY: f64 = 0.05;
    let mut rng = StdRng::seed_from_u64(1);
    let mut table =
        TableWriter::new(&["nodes", "feat", "edges", "graph(ms)", "global(ms)", "ratio"]);
    let mut points = Vec::new();
    for &n in &[512usize, 1024, 2048, 4096] {
        for &feat in &[16usize, 64, 256] {
            let m = (SPARSITY * (n * (n - 1) / 2) as f64) as usize;
            let tg = graph_attention_seconds(n, m, feat, &mut rng);
            let tf = global_attention_seconds(n, feat);
            let ratio = tg / tf;
            table.row(&[
                n.to_string(),
                feat.to_string(),
                m.to_string(),
                fmt(tg * 1e3, 3),
                fmt(tf * 1e3, 3),
                fmt(ratio, 2),
            ]);
            points.push(Point {
                nodes: n,
                feat_dim: feat,
                edges: m,
                graph_seconds: tg,
                global_seconds: tf,
                ratio,
            });
        }
    }
    mega_obs::data!(
        "Figure 1b — graph-attention / global-attention time ratio (sparsity {SPARSITY})\n"
    );
    table.print();
    mega_obs::data!(
        "\nPaper claim: ratio > 1 and growing with graph size, worst at small feature dims."
    );
    // Sanity note for the reader: kernel taxonomy involved.
    let _ = KernelKind::DglGather;
    save_json("fig01_attention_ratio", &points);
}
