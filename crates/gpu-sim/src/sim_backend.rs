//! A profiling decorator over any execution backend.
//!
//! [`SimBackend`] wraps an inner [`Backend`], forwards every kernel to it
//! unchanged (so values stay bit-identical to the inner backend), and replays
//! the *launch shape* of each call through the [`Profiler`]'s memory-system
//! model — the same coalescer/cache/roofline pipeline the epoch cost model
//! uses, but now fed the real shapes the training stack executes instead of
//! analytic operator counts. Attach it with `--backend sim` on the CLI to get
//! an nvprof-style per-kernel report for an actual training run.

use crate::device::DeviceConfig;
use crate::profiler::Profiler;
use crate::report::ProfileReport;
use mega_core::band::BandMask;
use mega_core::Parallelism;
use mega_exec::{Backend, Unary};
use std::sync::{Arc, Mutex};

/// Wraps an inner backend and records every kernel launch in a simulated
/// GPU profiler.
///
/// The profiler is behind a mutex because [`Backend`] is `Sync` while the
/// simulator mutates cache state per launch; contention is irrelevant since
/// kernel dispatch is already serialized per tape.
#[derive(Debug)]
pub struct SimBackend {
    inner: Arc<dyn Backend>,
    profiler: Mutex<Profiler>,
}

impl SimBackend {
    /// Decorates `inner`, simulating launches on `device`.
    pub fn new(inner: Arc<dyn Backend>, device: DeviceConfig) -> Self {
        SimBackend {
            inner,
            profiler: Mutex::new(Profiler::new(device)),
        }
    }

    /// The nvprof-style report of every launch recorded so far.
    pub fn report(&self) -> ProfileReport {
        self.profiler.lock().expect("profiler poisoned").report()
    }

    /// Simulated seconds accumulated across recorded launches.
    pub fn elapsed_seconds(&self) -> f64 {
        self.profiler
            .lock()
            .expect("profiler poisoned")
            .elapsed_seconds()
    }

    /// Records a dense GEMM launch of shape `m × n × k`.
    fn sim_sgemm(&self, n: usize, k: usize, m: usize) {
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let a = p.alloc(n * k * 4);
        let b = p.alloc(k * m * 4);
        let c = p.alloc(n * m * 4);
        p.launch_sgemm(a, b, c, n, m, k);
    }

    /// Records an elementwise launch over `elements` values.
    fn sim_elementwise(&self, elements: usize, flops_per_element: u64) {
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let buf = p.alloc(elements * 4);
        p.launch_elementwise(buf, elements, flops_per_element);
    }

    /// Records a fused linear+ReLU launch of shape `n × k × m` — one sgemm
    /// whose bias/ReLU epilogue runs in registers, not a separate
    /// elementwise pass over the output.
    fn sim_linear_relu(&self, n: usize, k: usize, m: usize) {
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let a = p.alloc(n * k * 4);
        let b = p.alloc(k * m * 4);
        let c = p.alloc(n * m * 4);
        p.launch_linear_relu(a, b, c, n, m, k);
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn matmul(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        self.inner.matmul(a, b, n, k, m, par, out);
        self.sim_sgemm(n, k, m);
    }

    fn linear_relu(
        &self,
        x: &[f32],
        w: &[f32],
        bias: &[f32],
        n: usize,
        k: usize,
        m: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        self.inner.linear_relu(x, w, bias, n, k, m, par, out);
        self.sim_linear_relu(n, k, m);
    }

    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.inner.add(a, b, out);
        self.sim_elementwise(out.len(), 1);
    }

    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.inner.sub(a, b, out);
        self.sim_elementwise(out.len(), 1);
    }

    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        self.inner.mul(a, b, out);
        self.sim_elementwise(out.len(), 1);
    }

    fn scale(&self, a: &[f32], k: f32, out: &mut [f32]) {
        self.inner.scale(a, k, out);
        self.sim_elementwise(out.len(), 1);
    }

    fn add_bias_rows(&self, x: &[f32], bias: &[f32], n: usize, m: usize, out: &mut [f32]) {
        self.inner.add_bias_rows(x, bias, n, m, out);
        self.sim_elementwise(n * m, 1);
    }

    fn unary(&self, op: Unary, x: &[f32], out: &mut [f32]) {
        self.inner.unary(op, x, out);
        // Transcendental activations cost more flops than clamps.
        let flops = match op {
            Unary::Relu | Unary::LeakyRelu(_) => 1,
            Unary::Sigmoid | Unary::Tanh => 8,
        };
        self.sim_elementwise(out.len(), flops);
    }

    fn gather_rows(
        &self,
        src: &[f32],
        src_rows: usize,
        cols: usize,
        index: &[usize],
        out: &mut [f32],
    ) {
        self.inner.gather_rows(src, src_rows, cols, index, out);
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let buf = p.alloc(src_rows * cols * 4);
        p.launch_gather(buf, index, cols, index.len());
    }

    fn scatter_add_rows(
        &self,
        src: &[f32],
        index: &[usize],
        cols: usize,
        out_rows: usize,
        out: &mut [f32],
    ) {
        self.inner.scatter_add_rows(src, index, cols, out_rows, out);
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let buf = p.alloc(out_rows * cols * 4);
        p.launch_scatter(buf, index, cols, index.len());
    }

    fn scale_rows(&self, x: &[f32], factors: &[f32], cols: usize, out: &mut [f32]) {
        self.inner.scale_rows(x, factors, cols, out);
        self.sim_elementwise(out.len(), 1);
    }

    fn segment_softmax(
        &self,
        x: &[f32],
        rows: usize,
        cols: usize,
        segments: &[usize],
        n_segments: usize,
        out: &mut [f32],
    ) {
        self.inner
            .segment_softmax(x, rows, cols, segments, n_segments, out);
        // Three passes (max, exp+sum, divide); exp dominates.
        self.sim_elementwise(rows * cols, 10);
    }

    fn layer_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        self.inner.layer_norm(x, gamma, beta, rows, cols, eps, out);
        self.sim_elementwise(rows * cols, 8);
    }

    fn batch_norm(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        rows: usize,
        cols: usize,
        eps: f32,
        out: &mut [f32],
    ) {
        self.inner.batch_norm(x, gamma, beta, rows, cols, eps, out);
        self.sim_elementwise(rows * cols, 8);
    }

    fn banded_aggregate(
        &self,
        band: &BandMask,
        x: &[f32],
        dim: usize,
        weights: &[f32],
        par: &Parallelism,
        out: &mut [f32],
    ) {
        self.inner.banded_aggregate(band, x, dim, weights, par, out);
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let buf = p.alloc(band.len().max(1) * dim * 4);
        p.launch_band_gather(buf, band.len(), band.window(), dim);
    }

    fn banded_weight_grad(
        &self,
        band: &BandMask,
        x: &[f32],
        d_out: &[f32],
        dim: usize,
        edge_count: usize,
        par: &Parallelism,
        out: &mut [f32],
    ) {
        self.inner
            .banded_weight_grad(band, x, d_out, dim, edge_count, par, out);
        let mut p = self.profiler.lock().expect("profiler poisoned");
        let x_buf = p.alloc(band.len().max(1) * dim * 4);
        let g_buf = p.alloc(band.len().max(1) * dim * 4);
        p.launch_band_wgrad(x_buf, g_buf, band.len(), band.window(), dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_exec::ReferenceBackend;

    #[test]
    fn sim_backend_forwards_values_and_records_launches() {
        let sim = SimBackend::new(Arc::new(ReferenceBackend), DeviceConfig::gtx_1080());
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        sim.matmul(&a, &b, 2, 2, 2, &Parallelism::with_threads(1), &mut out);
        let mut reference = [0.0f32; 4];
        ReferenceBackend.matmul(
            &a,
            &b,
            2,
            2,
            2,
            &Parallelism::with_threads(1),
            &mut reference,
        );
        assert_eq!(out, reference);
        let report = sim.report();
        assert!(!report.kernels().is_empty(), "sgemm launch not recorded");
        assert!(sim.elapsed_seconds() > 0.0);
    }

    #[test]
    fn gather_and_band_launches_are_recorded() {
        let sim = SimBackend::new(Arc::new(ReferenceBackend), DeviceConfig::gtx_1080());
        let src = [1.0f32, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 4];
        sim.gather_rows(&src, 2, 2, &[1, 0], &mut out);
        assert_eq!(out, [3.0, 4.0, 1.0, 2.0]);
        assert!(sim.report().kernels().iter().any(|k| k.invocations > 0));
    }

    fn band_fixture() -> BandMask {
        use mega_core::config::{MegaConfig, WindowPolicy};
        use mega_core::traversal::traverse;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = mega_graph::generate::erdos_renyi(24, 0.25, &mut StdRng::seed_from_u64(5)).unwrap();
        let cfg = MegaConfig::default().with_window(WindowPolicy::Fixed(2));
        BandMask::from_traversal(&traverse(&g, &cfg).unwrap())
    }

    #[test]
    fn weight_grad_gets_its_own_kernel_identity() {
        use crate::kernel::KernelKind;
        let sim = SimBackend::new(Arc::new(ReferenceBackend), DeviceConfig::gtx_1080());
        let band = band_fixture();
        let dim = 4;
        let par = Parallelism::with_threads(1);
        let x: Vec<f32> = (0..band.len() * dim)
            .map(|i| (i % 7) as f32 - 3.0)
            .collect();
        let d_out: Vec<f32> = (0..band.len() * dim)
            .map(|i| (i % 5) as f32 - 2.0)
            .collect();
        let edges = band
            .active_slots()
            .iter()
            .map(|s| s.edge)
            .max()
            .map_or(0, |m| m + 1);
        let weights: Vec<f32> = (0..edges).map(|i| (i % 3) as f32 - 1.0).collect();

        let mut agg = vec![0.0f32; band.len() * dim];
        sim.banded_aggregate(&band, &x, dim, &weights, &par, &mut agg);
        let mut dw = vec![0.0f32; edges];
        sim.banded_weight_grad(&band, &x, &d_out, dim, edges, &par, &mut dw);

        let report = sim.report();
        let gather = report
            .kernel(KernelKind::MegaBandGather)
            .expect("forward gather recorded");
        let wgrad = report
            .kernel(KernelKind::MegaBandWgrad)
            .expect("weight grad recorded");
        assert_eq!(
            gather.invocations, 1,
            "forward gather attributed separately"
        );
        assert_eq!(wgrad.invocations, 1, "weight grad attributed separately");
    }

    #[test]
    fn sim_over_simd_matches_sim_over_reference() {
        use mega_exec::SimdBackend;
        // Same launch shapes whatever the inner backend: simulated profiling
        // of the SIMD backend sees exactly the counters the reference run
        // sees, and the forwarded values stay bit-identical.
        let over_ref = SimBackend::new(Arc::new(ReferenceBackend), DeviceConfig::gtx_1080());
        let over_simd = SimBackend::new(Arc::new(SimdBackend::new()), DeviceConfig::gtx_1080());
        let par = Parallelism::with_threads(1);
        let (n, k, m) = (17usize, 33usize, 9usize);
        let a: Vec<f32> = (0..n * k)
            .map(|i| ((i * 31 % 19) as f32 - 9.0) / 4.0)
            .collect();
        let b: Vec<f32> = (0..k * m)
            .map(|i| ((i * 17 % 23) as f32 - 11.0) / 6.0)
            .collect();
        let bias: Vec<f32> = (0..m).map(|i| (i as f32 - 4.0) / 3.0).collect();
        let mut out_ref = vec![0.0f32; n * m];
        let mut out_simd = vec![0.0f32; n * m];
        over_ref.matmul(&a, &b, n, k, m, &par, &mut out_ref);
        over_simd.matmul(&a, &b, n, k, m, &par, &mut out_simd);
        over_ref.linear_relu(&a, &b, &bias, n, k, m, &par, &mut out_ref);
        over_simd.linear_relu(&a, &b, &bias, n, k, m, &par, &mut out_simd);
        for (x, y) in out_simd.iter().zip(&out_ref) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let (ra, rb) = (over_ref.report(), over_simd.report());
        for (kr, ks) in ra.kernels().iter().zip(rb.kernels()) {
            assert_eq!(kr.kind, ks.kind, "same kernel taxonomy");
            assert_eq!(
                kr.invocations, ks.invocations,
                "same launch counts for {:?}",
                kr.kind
            );
            assert_eq!(
                kr.load_transactions, ks.load_transactions,
                "same shapes for {:?}",
                kr.kind
            );
        }
    }
}
