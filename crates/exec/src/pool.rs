//! Size-class freelist of `f32` buffers with demand-adaptive caps and
//! per-class memory telemetry.
//!
//! Training builds and drops one autograd tape per batch; every tape node
//! used to allocate (and free) a fresh `Vec<f32>`. The pool intercepts that
//! churn: released buffers are binned by the largest power of two that fits
//! their capacity, and an acquire takes any buffer from the bin of the
//! *next* power of two of the requested length — so a recycled buffer always
//! has enough capacity, whatever exact shape it used to hold.
//!
//! Ownership rules (see DESIGN.md §6):
//!
//! * `acquire` transfers ownership of a **zeroed** buffer of exactly the
//!   requested length to the caller — pool reuse is never observable in the
//!   values a kernel computes.
//! * `release` transfers ownership back. Releasing a buffer the pool never
//!   issued is fine (that is how fresh allocations enter circulation);
//!   dropping an acquired buffer instead of releasing it is also fine, the
//!   pool just loses one reuse candidate.
//! * Each size class keeps at most its **adaptive cap**: the high-water
//!   mark of concurrently outstanding buffers in that class, clamped to
//!   `[1, MAX_PER_CLASS]`. The hit/miss telemetry that motivated this (the
//!   ROADMAP follow-up) showed steady-state training re-acquires exactly as
//!   many buffers per class as it holds at peak — a miss only happens when
//!   concurrent demand grows past everything seen before, which is exactly
//!   the event that raises the high-water mark and with it the cap. So the
//!   cap tracks measured demand instead of parking `MAX_PER_CLASS` buffers
//!   a single-threaded trainer can never use.
//!
//! While `mega_obs` tracing is enabled the pool also exports per-class
//! gauges (`exec.pool.class<k>.{resident_bytes, resident_hwm_bytes, cap}`),
//! the global `exec.pool.hits`/`misses` counters, and a Chrome-trace
//! counter track of total resident bytes; [`BufferPool::class_stats`]
//! exposes the same numbers programmatically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Per-size-class freelist state plus its demand telemetry.
#[derive(Debug, Default)]
struct ClassState {
    parked: Vec<Vec<f32>>,
    /// Bytes held by `parked` buffers (capacities, not lengths).
    resident_bytes: u64,
    /// High-water mark of `resident_bytes`.
    resident_hwm_bytes: u64,
    /// Buffers currently checked out of this class (acquired, not yet
    /// released). Foreign releases can push this below true demand — it
    /// saturates at zero — which only ever *lowers* the cap, never grows it.
    outstanding: usize,
    /// High-water mark of `outstanding`: the measured concurrent demand
    /// that drives the adaptive cap.
    outstanding_hwm: usize,
}

impl ClassState {
    /// The adaptive retention cap: measured peak demand, at least 1 (so a
    /// class can always warm up), at most [`BufferPool::MAX_PER_CLASS`].
    fn cap(&self) -> usize {
        self.outstanding_hwm.clamp(1, BufferPool::MAX_PER_CLASS)
    }
}

/// A point-in-time copy of one size class's telemetry, from
/// [`BufferPool::class_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolClassStats {
    /// Size-class index: the class holds buffers of capacity
    /// `[2^class, 2^(class+1))` elements.
    pub class: u32,
    /// Buffers currently parked in the freelist.
    pub parked: usize,
    /// Bytes held by parked buffers.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub resident_hwm_bytes: u64,
    /// Buffers currently checked out.
    pub outstanding: usize,
    /// High-water mark of concurrently checked-out buffers.
    pub outstanding_hwm: usize,
    /// Current adaptive retention cap.
    pub cap: usize,
}

/// A thread-safe size-class freelist of `Vec<f32>` buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: Mutex<BTreeMap<u32, ClassState>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Suppresses the per-class gauge/trace exports (hit/miss counters are
    /// additive and stay on). Concurrent pools would race last-writer-wins
    /// on the shared gauge names; a quiet pool is observed via
    /// [`BufferPool::class_stats`] and aggregated by its owner instead.
    quiet: bool,
}

impl BufferPool {
    /// Upper bound on buffers retained per size class, whatever the demand
    /// high-water mark says; further releases are dropped.
    pub const MAX_PER_CLASS: usize = 32;

    /// An empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// An empty pool that never exports the per-class gauges or the
    /// resident-bytes trace track. For pools that run concurrently with
    /// others (e.g. one per distributed worker): the gauge names are
    /// global, so live exports from concurrent pools would interleave
    /// nondeterministically — the owner aggregates [`class_stats`] after
    /// joining instead. The additive `exec.pool.hits`/`misses` counters
    /// stay on; sums are interleaving-invariant.
    ///
    /// [`class_stats`]: BufferPool::class_stats
    pub fn quiet() -> Self {
        BufferPool {
            quiet: true,
            ..BufferPool::default()
        }
    }

    /// The class a request of `len` elements draws from: index of the next
    /// power of two, so any buffer stored there has capacity `>= len`.
    fn class_of_request(len: usize) -> u32 {
        len.max(1).next_power_of_two().trailing_zeros()
    }

    /// The class a buffer of `capacity` is stored under: index of the
    /// largest power of two that fits, so the buffer satisfies every request
    /// routed to that class.
    fn class_of_capacity(capacity: usize) -> u32 {
        (usize::BITS - 1).saturating_sub(capacity.leading_zeros())
    }

    /// Emits the per-class gauges and the resident-bytes counter track for
    /// one touched class. `total_resident` is summed under the same lock
    /// that observed the class, so the track never interleaves stale sums.
    fn emit_class_telemetry(class: u32, stats: (u64, u64, usize), total_resident: u64) {
        let (resident, hwm, cap) = stats;
        mega_obs::gauge_set(
            &format!("exec.pool.class{class}.resident_bytes"),
            resident as f64,
        );
        mega_obs::gauge_set(
            &format!("exec.pool.class{class}.resident_hwm_bytes"),
            hwm as f64,
        );
        mega_obs::gauge_set(&format!("exec.pool.class{class}.cap"), cap as f64);
        mega_obs::trace_counter("exec.pool.resident_bytes", total_resident as f64);
    }

    /// Takes a zeroed buffer of exactly `len` elements, recycling a pooled
    /// allocation when one is available.
    pub fn acquire(&self, len: usize) -> Vec<f32> {
        let class = Self::class_of_request(len);
        let obs = mega_obs::enabled();
        let gauges = obs && !self.quiet;
        let (recycled, telemetry) = {
            let mut classes = self.classes.lock().expect("buffer pool poisoned");
            let state = classes.entry(class).or_default();
            state.outstanding += 1;
            state.outstanding_hwm = state.outstanding_hwm.max(state.outstanding);
            let recycled = state.parked.pop();
            if let Some(buf) = &recycled {
                state.resident_bytes -= 4 * buf.capacity() as u64;
            }
            let stats = (state.resident_bytes, state.resident_hwm_bytes, state.cap());
            let telemetry =
                gauges.then(|| (stats, classes.values().map(|s| s.resident_bytes).sum()));
            (recycled, telemetry)
        };
        let buf = match recycled {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if obs {
                    mega_obs::counter_add("exec.pool.hits", 1);
                }
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if obs {
                    mega_obs::counter_add("exec.pool.misses", 1);
                }
                vec![0.0f32; len]
            }
        };
        if let Some((stats, total)) = telemetry {
            Self::emit_class_telemetry(class, stats, total);
        }
        buf
    }

    /// Returns a buffer to the pool for reuse. Zero-capacity buffers and
    /// overflow beyond the class's adaptive cap are dropped.
    pub fn release(&self, buf: Vec<f32>) {
        let class = Self::class_of_capacity(buf.capacity());
        let obs = mega_obs::enabled();
        let mut classes = self.classes.lock().expect("buffer pool poisoned");
        let state = classes.entry(class).or_default();
        state.outstanding = state.outstanding.saturating_sub(1);
        if buf.capacity() > 0 && state.parked.len() < state.cap() {
            state.resident_bytes += 4 * buf.capacity() as u64;
            state.resident_hwm_bytes = state.resident_hwm_bytes.max(state.resident_bytes);
            state.parked.push(buf);
        }
        if obs && !self.quiet {
            let stats = (state.resident_bytes, state.resident_hwm_bytes, state.cap());
            let total = classes.values().map(|s| s.resident_bytes).sum();
            drop(classes);
            Self::emit_class_telemetry(class, stats, total);
        }
    }

    /// Number of acquires served from the freelist.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of acquires that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the pool, across all classes.
    pub fn pooled(&self) -> usize {
        self.classes
            .lock()
            .expect("buffer pool poisoned")
            .values()
            .map(|s| s.parked.len())
            .sum()
    }

    /// Bytes currently parked in the pool, across all classes.
    pub fn resident_bytes(&self) -> u64 {
        self.classes
            .lock()
            .expect("buffer pool poisoned")
            .values()
            .map(|s| s.resident_bytes)
            .sum()
    }

    /// Telemetry for every size class the pool has touched, ascending by
    /// class index.
    pub fn class_stats(&self) -> Vec<PoolClassStats> {
        self.classes
            .lock()
            .expect("buffer pool poisoned")
            .iter()
            .map(|(&class, s)| PoolClassStats {
                class,
                parked: s.parked.len(),
                resident_bytes: s.resident_bytes,
                resident_hwm_bytes: s.resident_hwm_bytes,
                outstanding: s.outstanding,
                outstanding_hwm: s.outstanding_hwm,
                cap: s.cap(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_zeroed_exact_length() {
        let pool = BufferPool::new();
        let mut b = pool.acquire(10);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&v| v == 0.0));
        b.iter_mut().for_each(|v| *v = 7.0);
        pool.release(b);
        // The capacity-10 buffer parks in class 3 (floor: 8) and serves a
        // request of up to 8 elements, still zeroed.
        let again = pool.acquire(8);
        assert_eq!(again.len(), 8);
        assert!(again.iter().all(|&v| v == 0.0));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn release_bins_by_capacity_floor() {
        let pool = BufferPool::new();
        // A capacity-100 buffer lands in class 6 (64) and must not serve a
        // request of 128 (class 7).
        pool.release(Vec::with_capacity(100));
        let b = pool.acquire(128);
        assert_eq!(b.len(), 128);
        assert_eq!(pool.misses(), 1);
        // But it does serve a request of 64 or less.
        let c = pool.acquire(64);
        assert_eq!(c.len(), 64);
        assert_eq!(pool.hits(), 1);
    }

    #[test]
    fn adaptive_cap_follows_demand_high_water_mark() {
        let pool = BufferPool::new();
        // Foreign releases with no observed demand: the cap floor of 1
        // keeps exactly one warm buffer, the rest are dropped.
        for _ in 0..(BufferPool::MAX_PER_CLASS + 5) {
            pool.release(vec![0.0; 8]);
        }
        assert_eq!(pool.pooled(), 1);

        // Raise the demand high-water mark to 3 by holding three buffers of
        // one class at once; the cap follows.
        let held: Vec<_> = (0..3).map(|_| pool.acquire(8)).collect();
        for b in held {
            pool.release(b);
        }
        let stats = pool.class_stats();
        let class3 = stats
            .iter()
            .find(|s| s.class == 3)
            .expect("class 3 touched");
        assert_eq!(class3.outstanding_hwm, 3);
        assert_eq!(class3.cap, 3);
        assert_eq!(class3.parked, 3, "all three fit under the demand cap");
        assert_eq!(class3.resident_bytes, 3 * 8 * 4);
        assert!(class3.resident_hwm_bytes >= class3.resident_bytes);

        // Overflow past the raised cap is still dropped.
        for _ in 0..10 {
            pool.release(vec![0.0; 8]);
        }
        assert_eq!(pool.pooled(), 3);

        // The cap never exceeds MAX_PER_CLASS however high demand goes.
        let many: Vec<_> = (0..(BufferPool::MAX_PER_CLASS + 9))
            .map(|_| pool.acquire(64))
            .collect();
        for b in many {
            pool.release(b);
        }
        let stats = pool.class_stats();
        let class6 = stats
            .iter()
            .find(|s| s.class == 6)
            .expect("class 6 touched");
        assert_eq!(class6.outstanding_hwm, BufferPool::MAX_PER_CLASS + 9);
        assert_eq!(class6.cap, BufferPool::MAX_PER_CLASS);
        assert_eq!(class6.parked, BufferPool::MAX_PER_CLASS);
    }

    #[test]
    fn resident_bytes_track_park_and_drain() {
        let pool = BufferPool::new();
        let a = pool.acquire(16);
        let b = pool.acquire(16);
        assert_eq!(pool.resident_bytes(), 0);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.resident_bytes(), 2 * 16 * 4);
        let _c = pool.acquire(16);
        assert_eq!(pool.resident_bytes(), 16 * 4, "a hit drains resident bytes");
        let stats = pool.class_stats();
        let class4 = stats.iter().find(|s| s.class == 4).unwrap();
        assert_eq!(class4.resident_hwm_bytes, 2 * 16 * 4);
        assert_eq!(class4.outstanding, 1);
    }

    #[test]
    fn zero_length_requests_work() {
        let pool = BufferPool::new();
        let b = pool.acquire(0);
        assert!(b.is_empty());
        pool.release(b);
    }
}
